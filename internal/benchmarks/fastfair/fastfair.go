// Package fastfair ports FAST_FAIR (Hwang et al., FAST '18), the
// persistent B+-tree the paper evaluates. The port reproduces the
// persistence skeleton of a FAST_FAIR page: a header holding
// leftmost_ptr, switch_counter, and last_index, plus a sorted entry
// array written with failure-atomic shifts. Entries whose key and
// pointer words straddle cache-line boundaries are modeled by splitting
// the key and pointer arrays onto separate lines — which is exactly the
// layout hazard behind the paper's alignment bug (#9): the header class
// is larger than the developers expected, so fields they believed
// shared a cache line (and hence persisted in TSO order) do not.
//
// Seeded bugs, rows #7–#13 of Table 2:
//
//	#7  switch_counter  incrementing it in page::insert_key
//	#8  last_index      updating it in page::insert_key
//	#9  dummy           unalignment caused by header class
//	#10 entry::ptr      writing to ptr in insert_key
//	#11 entry::ptr      writing to ptr in entry constructor
//	#12 leftmost_ptr    writing to leftmost_ptr in header constructor
//	#13 btree::root     writing to root in btree constructor
package fastfair

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	// cardinality is the number of entries per page.
	cardinality = 6

	// Header line offsets (page line 0).
	hdrLeftmostOff = 0
	hdrSwitchOff   = 8
	hdrLastIdxOff  = 16
	// hdrDummyOff is the header's trailing padding word. The original
	// code assumed the compiler placed it on the entry array's cache
	// line; the actual C++ object layout leaves it on the header line.
	hdrDummyOff = 24
	// hdrSiblingOff is FAST_FAIR's right-sibling pointer, the hook its
	// lock-free rebalancing hangs off; hdrLevelOff is the page's level
	// (0 = leaf).
	hdrSiblingOff = 32
	hdrLevelOff   = 40

	// Key and pointer array offsets (page lines 1 and 2): an entry's key
	// and ptr words live on different cache lines.
	keysOff = memmodel.CacheLineSize
	ptrsOff = 2 * memmodel.CacheLineSize

	// Driver metadata: a persisted operation counter the test driver
	// updates after the workload, as FAST_FAIR's drivers do.
	metaOpsAddr = pmem.RootAddr + 8*memmodel.WordSize
)

// tree is the runtime handle for one simulated FAST_FAIR instance.
type tree struct {
	v bench.Variant
}

func (t *tree) persistIfFixed(th *pmem.Thread, a memmodel.Addr, size int, loc string) {
	if t.v == bench.Fixed {
		th.Persist(a, size, loc)
	}
}

func keyAddr(page memmodel.Addr, i int) memmodel.Addr {
	return page + keysOff + memmodel.Addr(i*memmodel.WordSize)
}

func ptrAddr(page memmodel.Addr, i int) memmodel.Addr {
	return page + ptrsOff + memmodel.Addr(i*memmodel.WordSize)
}

// newPage runs the page, header, and entry constructors for a fresh
// page at the given level. Bugs #11 and #12 live here, so every page
// the tree ever allocates (root, splits) carries them.
func (t *tree) newPage(th *pmem.Thread, level int, leftmost memmodel.Addr) memmodel.Addr {
	w := th.World()
	page := w.Heap.AllocLines(3)
	// header constructor: bug #12.
	th.Store(page+hdrLeftmostOff, memmodel.Value(leftmost), "leftmost_ptr in header constructor")
	t.persistIfFixed(th, page+hdrLeftmostOff, memmodel.WordSize, "persist leftmost_ptr")
	// The counter initializations share the header line and are equally
	// unflushed in the original constructor; flushing them would persist
	// the whole line (leftmost_ptr included) and mask bug #12.
	th.Store(page+hdrSwitchOff, 0, "switch_counter in header constructor init")
	th.Store(page+hdrLastIdxOff, 0, "last_index in header constructor init")
	t.persistIfFixed(th, page+hdrSwitchOff, 2*memmodel.WordSize, "persist header counters init")
	// entry constructors: keys are persisted (the original flushes the
	// page), but the ptr initialization is missing its flush — bug #11.
	for i := 0; i < cardinality; i++ {
		th.Store(keyAddr(page, i), 0, "entry::key in entry constructor")
		th.Store(ptrAddr(page, i), 0, "entry::ptr in entry constructor") // bug #11
		t.persistIfFixed(th, ptrAddr(page, i), memmodel.WordSize, "persist entry::ptr init")
	}
	th.Persist(keyAddr(page, 0), cardinality*memmodel.WordSize, "persist entry keys init")
	// Sibling pointer and level share the header line; like the other
	// header fields they are not flushed by the constructor (flushing
	// them would persist the whole line and mask bug #12).
	th.Store(page+hdrSiblingOff, 0, "sibling_ptr in header constructor")
	th.Store(page+hdrLevelOff, memmodel.Value(level), "level in header constructor")
	t.persistIfFixed(th, page+hdrSiblingOff, 2*memmodel.WordSize, "persist sibling and level")
	return page
}

// create is the btree constructor: it allocates the root page and
// publishes it — bug #13 (plus #11/#12 via the page constructor).
func (t *tree) create(th *pmem.Thread) memmodel.Addr {
	page := t.newPage(th, 0, 0)
	th.Store(pmem.RootAddr, memmodel.Value(page), "btree::root in btree constructor")
	t.persistIfFixed(th, pmem.RootAddr, memmodel.WordSize, "persist btree::root")
	return page
}

// insertKey is page::insert_key: place the (key, ptr) pair in sorted
// position using the FAST failure-atomic shift, bump switch_counter,
// and update last_index. Bugs #7–#10 live here.
func (t *tree) insertKey(th *pmem.Thread, page memmodel.Addr, key, ptr memmodel.Value) bool {
	n := int(th.Load(page+hdrLastIdxOff, "read last_index in insert_key"))
	if n >= cardinality {
		return false
	}
	// Find the sorted position.
	pos := n
	for pos > 0 && th.Load(keyAddr(page, pos-1), "read key in insert_key shift scan") > key {
		pos--
	}
	// FAST shift: move entries right, pointer word first, then the key
	// word that republishes the slot — each shifted pointer store is
	// another instance of bug #10.
	for i := n; i > pos; i-- {
		pv := th.Load(ptrAddr(page, i-1), "read ptr in insert_key shift")
		kv := th.Load(keyAddr(page, i-1), "read key in insert_key shift")
		th.Store(ptrAddr(page, i), pv, "entry::ptr in insert_key") // bug #10
		t.persistIfFixed(th, ptrAddr(page, i), memmodel.WordSize, "persist shifted entry::ptr")
		th.Store(keyAddr(page, i), kv, "entry::key in insert_key")
		th.Persist(keyAddr(page, i), memmodel.WordSize, "persist shifted entry::key")
	}
	// Write the new entry: pointer first, then the key that makes it
	// visible. The pointer word's cache line is never flushed — bug #10.
	th.Store(ptrAddr(page, pos), ptr, "entry::ptr in insert_key") // bug #10
	t.persistIfFixed(th, ptrAddr(page, pos), memmodel.WordSize, "persist entry::ptr")
	th.Store(keyAddr(page, pos), key, "entry::key in insert_key")
	th.Persist(keyAddr(page, pos), memmodel.WordSize, "persist entry::key")
	// The header's trailing padding word: the original code relies on it
	// sharing the entry line (no flush needed under same-line TSO
	// persist order), but the C++ layout leaves it on the header line —
	// bug #9.
	th.Store(page+hdrDummyOff, key, "dummy in header class (page::insert_key)") // bug #9
	t.persistIfFixed(th, page+hdrDummyOff, memmodel.WordSize, "persist dummy")
	// FAIR bookkeeping — bugs #7 and #8.
	sc := th.Load(page+hdrSwitchOff, "read switch_counter in insert_key")
	th.Store(page+hdrSwitchOff, sc+1, "switch_counter in page::insert_key") // bug #7
	t.persistIfFixed(th, page+hdrSwitchOff, memmodel.WordSize, "persist switch_counter")
	th.Store(page+hdrLastIdxOff, memmodel.Value(n+1), "last_index in page::insert_key") // bug #8
	t.persistIfFixed(th, page+hdrLastIdxOff, memmodel.WordSize, "persist last_index")
	return true
}

// lookup is btree::search on the single-page tree.
func (t *tree) lookup(th *pmem.Thread, page memmodel.Addr, key memmodel.Value) (memmodel.Value, bool) {
	n := int(th.Load(page+hdrLastIdxOff, "read last_index in search"))
	if n > cardinality {
		n = cardinality
	}
	for i := 0; i < n; i++ {
		if th.Load(keyAddr(page, i), "read entry::key in search") == key {
			return th.Load(ptrAddr(page, i), "read entry::ptr in search"), true
		}
	}
	return 0, false
}

// Build constructs the exploration program for a variant: the driver
// inserts enough keys to split the root (exercising the multi-level
// FAIR machinery) including one out-of-order key that drives the FAST
// shift path, then recovery walks the whole tree.
func Build(v bench.Variant) explore.Program {
	t := &tree{v: v}
	keys := []memmodel.Value{100, 101, 103, 104, 105, 106, 102, 107, 108}
	return &explore.FuncProgram{
		ProgName: "FAST_FAIR-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				t.create(th)
				// The driver records construction durably before the
				// workload starts, as the original harness does.
				th.Store(metaOpsAddr, 1, "driver ops marker")
				th.Persist(metaOpsAddr, memmodel.WordSize, "persist driver ops marker")
				for _, k := range keys {
					t.Insert(th, k, k+1000)
				}
				// The driver records its progress durably, as the
				// original test harness does.
				th.Store(metaOpsAddr, memmodel.Value(len(keys)), "driver ops marker")
				th.Persist(metaOpsAddr, memmodel.WordSize, "persist driver ops marker")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				t.walkRecover(th)
				for _, k := range keys {
					t.Search(th, k)
				}
			},
		},
	}
}

// Benchmark describes the port for the evaluation harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "FAST_FAIR",
		Expected: []bench.ExpectedBug{
			{ID: 7, Field: "switch_counter", Cause: "incrementing it in page::insert_key", LocSubstr: "switch_counter in page::insert_key"},
			{ID: 8, Field: "last_index", Cause: "updating it in page::insert_key", LocSubstr: "last_index in page::insert_key"},
			{ID: 9, Field: "dummy", Cause: "unalignment caused by header class", LocSubstr: "dummy in header class"},
			{ID: 10, Field: "entry::ptr", Cause: "writing to ptr in insert_key", LocSubstr: "entry::ptr in insert_key"},
			{ID: 11, Field: "entry::ptr", Cause: "writing to ptr in entry constructor", LocSubstr: "entry::ptr in entry constructor", Known: true},
			{ID: 12, Field: "leftmost_ptr", Cause: "writing to leftmost_ptr in header constructor", LocSubstr: "leftmost_ptr in header constructor", Known: true},
			{ID: 13, Field: "btree::root", Cause: "writing to root in btree constructor", LocSubstr: "btree::root in btree constructor", Known: true},
		},
		Build:         Build,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}
