// Package benchmarks aggregates the evaluation's benchmark ports (§6.1):
// CCEH, FAST_FAIR, the RECIPE indexes, the PMDK examples, and the two
// real-world applications. The harness iterates All to regenerate the
// paper's tables.
package benchmarks

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/benchmarks/cceh"
	"repro/internal/benchmarks/fastfair"
	"repro/internal/benchmarks/kvstore"
	"repro/internal/benchmarks/part"
	"repro/internal/benchmarks/pbwtree"
	"repro/internal/benchmarks/pclht"
	"repro/internal/benchmarks/pmasstree"
	"repro/internal/benchmarks/pmdk"
)

// All returns every benchmark port in the paper's Table 2 order,
// followed by the applications.
func All() []*bench.Benchmark {
	return []*bench.Benchmark{
		cceh.Benchmark(),
		fastfair.Benchmark(),
		part.Benchmark(),
		pbwtree.Benchmark(),
		pclht.Benchmark(),
		pmasstree.Benchmark(),
		pmdk.Benchmark(),
		kvstore.MemcachedBenchmark(),
		kvstore.RedisBenchmark(),
	}
}

// Indexes returns the data-structure benchmarks used in the Table 3
// performance comparison (the paper's six index rows).
func Indexes() []*bench.Benchmark {
	return []*bench.Benchmark{
		cceh.Benchmark(),
		fastfair.Benchmark(),
		part.Benchmark(),
		pbwtree.Benchmark(),
		pclht.Benchmark(),
		pmasstree.Benchmark(),
	}
}

// ByName finds a benchmark by its table name, or nil.
func ByName(name string) *bench.Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}
