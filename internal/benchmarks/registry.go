// Package benchmarks aggregates the evaluation's benchmark ports (§6.1):
// CCEH, FAST_FAIR, the RECIPE indexes, the PMDK examples, and the two
// real-world applications. The harness iterates All to regenerate the
// paper's tables.
package benchmarks

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/benchmarks/cceh"
	"repro/internal/benchmarks/fastfair"
	"repro/internal/benchmarks/kvstore"
	"repro/internal/benchmarks/part"
	"repro/internal/benchmarks/pbwtree"
	"repro/internal/benchmarks/pclht"
	"repro/internal/benchmarks/pmasstree"
	"repro/internal/benchmarks/pmdk"
	"repro/internal/benchmarks/redislog"
	"repro/internal/benchmarks/slabcache"
)

// All returns every benchmark port in the paper's Table 2 order,
// followed by the applications.
func All() []*bench.Benchmark {
	return []*bench.Benchmark{
		cceh.Benchmark(),
		fastfair.Benchmark(),
		part.Benchmark(),
		pbwtree.Benchmark(),
		pclht.Benchmark(),
		pmasstree.Benchmark(),
		pmdk.Benchmark(),
		kvstore.MemcachedBenchmark(),
		kvstore.RedisBenchmark(),
	}
}

// Indexes returns the data-structure benchmarks used in the Table 3
// performance comparison (the paper's six index rows).
func Indexes() []*bench.Benchmark {
	return []*bench.Benchmark{
		cceh.Benchmark(),
		fastfair.Benchmark(),
		part.Benchmark(),
		pbwtree.Benchmark(),
		pclht.Benchmark(),
		pmasstree.Benchmark(),
	}
}

// Servers returns the workload-driven server ports (the Redis-style
// append log and the memcached-style slab cache). They are registered
// separately from All: their default configurations are registry-sized,
// but their reason to exist is the long-trace regime — psan-bench
// rebuilds them around a workload.Config streaming millions of
// operations through one execution, which the Table 2 harness should
// not iterate by accident.
func Servers() []*bench.Benchmark {
	return []*bench.Benchmark{
		redislog.Benchmark(),
		slabcache.Benchmark(),
	}
}

// ByName finds a benchmark by its table name, or nil. The workload
// servers are addressable by name even though All omits them.
func ByName(name string) *bench.Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	for _, b := range Servers() {
		if b.Name == name {
			return b
		}
	}
	return nil
}
