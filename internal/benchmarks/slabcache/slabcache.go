// Package slabcache ports the persistence skeleton of a memcached-style
// slab cache: items are carved from size-classed slabs, recycled
// through per-class freelists (volatile allocator metadata, as in
// memcached), and published into a direct-indexed hash table. Like
// internal/benchmarks/redislog it is built to be driven by
// internal/workload — every request is O(1) and every store persists as
// it goes, so one execution can stream millions of operations through a
// bounded trace window. Slab recycling makes it the harsher retirement
// test of the two server ports: item memory is continually overwritten
// at the same addresses, so the per-word candidate lists see deep,
// churning histories.
//
// The seeded bug is the do_item_link ordering class from the paper's
// memcached rows: the buggy variant publishes the table pointer before
// the item header is flushed, so a crash can expose a reachable item
// whose header still carries the previous occupant's identity.
package slabcache

import (
	"fmt"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/workload"
)

// Server root line: table base, driver marker.
const (
	scTableAddr  = pmem.RootAddr
	scMarkerAddr = pmem.RootAddr + memmodel.WordSize
)

// Item layout: header words on the first line, data words behind them.
const (
	itKeyOff    = 0
	itFlagsOff  = 8
	itNWordsOff = 16
	itDataOff   = 24
)

// classLines returns the cache lines a class-c item occupies; class c
// holds up to classWords(c) data words.
func classLines(c int) int { return c + 1 }

func classWords(c int) int {
	return (classLines(c)*memmodel.CacheLineSize - itDataOff) / memmodel.WordSize
}

// classFor picks the smallest slab class that fits nwords data words.
func classFor(nwords int) int {
	c := 0
	for classWords(c) < nwords {
		c++
	}
	return c
}

// Cache is the slab-cache server instance. The freelists are volatile
// Go state — memcached keeps its slabs metadata in DRAM too — so a
// crash forgets them; the persistent truth is the table and the items
// it reaches.
type Cache struct {
	v    bench.Variant
	free [][]memmodel.Addr
}

// New builds a server instance for a variant.
func New(v bench.Variant) *Cache { return &Cache{v: v} }

// Init creates the persistent root: the direct-indexed item table for
// keys 1..keys. It also resets the volatile freelists, which a fresh
// phase (post-crash) must not inherit.
func (c *Cache) Init(th *pmem.Thread, keys int) {
	c.free = nil
	w := th.World()
	table := w.Heap.AllocLines((keys*memmodel.WordSize + memmodel.CacheLineSize - 1) / memmodel.CacheLineSize)
	th.Store(scTableAddr, memmodel.Value(table), "item table base in slabs_init")
	th.Persist(scTableAddr, 2*memmodel.WordSize, "persist server root in slabs_init")
}

func (c *Cache) table(th *pmem.Thread) memmodel.Addr {
	return memmodel.Addr(th.Load(scTableAddr, "read item table base"))
}

func (c *Cache) slot(table memmodel.Addr, key memmodel.Value) memmodel.Addr {
	return table + memmodel.Addr(key-1)*memmodel.WordSize
}

// alloc pops a recycled class-cl item or carves a fresh one.
func (c *Cache) alloc(th *pmem.Thread, cl int) memmodel.Addr {
	for len(c.free) <= cl {
		c.free = append(c.free, nil)
	}
	if fl := c.free[cl]; len(fl) > 0 {
		it := fl[len(fl)-1]
		c.free[cl] = fl[:len(fl)-1]
		return it
	}
	return th.World().Heap.AllocLines(classLines(cl))
}

// Set fills an item and links it (do_item_link): write the header and
// data, persist, publish into the table, persist the slot, and recycle
// the previous occupant. The buggy variant publishes before the item is
// flushed.
func (c *Cache) Set(th *pmem.Thread, key, val memmodel.Value, words int) {
	if words <= 0 {
		words = 1
	}
	cl := classFor(words)
	it := c.alloc(th, cl)
	th.Store(it+itKeyOff, key, "item::key in do_item_link") // seeded bug (buggy: published unflushed)
	th.Store(it+itFlagsOff, memmodel.Value(cl+1), "item::flags in do_item_link")
	th.Store(it+itNWordsOff, memmodel.Value(words), "item::nwords in do_item_link")
	for j := 0; j < words; j++ {
		th.Store(it+itDataOff+memmodel.Addr(j)*memmodel.WordSize, val+memmodel.Value(j), "item::data in do_item_link")
	}
	if c.v == bench.Fixed {
		// Item complete and durable before it becomes reachable.
		th.Persist(it, classLines(cl)*memmodel.CacheLineSize, "persist item before publish")
	}
	slot := c.slot(c.table(th), key)
	old := th.Load(slot, "read old item in do_item_link")
	th.Store(slot, memmodel.Value(it), "table slot publish in do_item_link")
	th.Persist(slot, memmodel.WordSize, "persist table slot")
	if old != 0 {
		// do_item_unlink: the displaced item returns to its class
		// freelist; its memory will be rewritten by a later Set.
		ocl := int(th.Load(memmodel.Addr(old)+itFlagsOff, "read old item flags in do_item_unlink")) - 1
		if ocl >= 0 {
			for len(c.free) <= ocl {
				c.free = append(c.free, nil)
			}
			c.free[ocl] = append(c.free[ocl], memmodel.Addr(old))
		}
	}
}

// Get reads the current item for key through the table.
func (c *Cache) Get(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	it := memmodel.Addr(th.Load(c.slot(c.table(th), key), "read table slot in get"))
	if it == 0 {
		return 0, false
	}
	if th.Load(it+itKeyOff, "read item key in get") != key {
		return 0, false
	}
	return th.Load(it+itDataOff, "read item data in get"), true
}

// Restart is the warm-restart scan: every reachable item must carry the
// key its slot indexes — a mismatch is the recycled-item identity the
// seeded bug exposes after a crash.
func (c *Cache) Restart(th *pmem.Thread, keys int) {
	th.Load(scMarkerAddr, "read driver marker in Restart")
	table := c.table(th)
	if table == 0 {
		return
	}
	for k := memmodel.Value(1); int(k) <= keys; k++ {
		it := memmodel.Addr(th.Load(c.slot(table, k), "read table slot in Restart"))
		if it == 0 {
			continue
		}
		key := th.Load(it+itKeyOff, "read item key in Restart")
		flags := th.Load(it+itFlagsOff, "read item flags in Restart")
		if key != k {
			th.World().RecordAssertFailure(fmt.Sprintf("slabcache: slot %d reaches item %#x keyed %d", uint64(k), uint64(it), uint64(key)))
			continue
		}
		if flags == 0 {
			th.World().RecordAssertFailure(fmt.Sprintf("slabcache: reachable item %#x with zero flags", uint64(it)))
		}
	}
}

// BuildWorkload constructs the exploration program: initialize the
// cache, drive the configured request stream, crash, warm-restart.
func BuildWorkload(v bench.Variant, wcfg workload.Config) explore.Program {
	c := New(v)
	cfg := wcfg
	if cfg.Keys <= 0 {
		cfg.Keys = 64
	}
	return &explore.FuncProgram{
		ProgName: "SlabCache-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				c.Init(w.Thread(0), cfg.Keys)
				workload.Drive(w, cfg, c)
				th := w.Thread(0)
				th.Store(scMarkerAddr, 1, "driver marker")
				th.Persist(scMarkerAddr, memmodel.WordSize, "persist driver marker")
			},
			func(w *pmem.World) {
				c.Restart(w.Thread(0), cfg.Keys)
			},
		},
	}
}

// DefaultConfig is the small registry-sized workload; psan-bench
// overrides it for the long-trace runs.
func DefaultConfig() workload.Config {
	return workload.Config{
		Ops:     64,
		Keys:    16,
		ZipfS:   1.2,
		ReadPct: 30,
		Threads: 2,
		Classes: []workload.SizeClass{{Words: 1, Weight: 3}, {Words: 8, Weight: 1}, {Words: 24, Weight: 1}},
	}
}

// Benchmark describes the port for the harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "SlabCache",
		Expected: []bench.ExpectedBug{
			{Field: "item::key", Cause: "publishing the table pointer in do_item_link before the item is flushed", LocSubstr: "item::key in do_item_link"},
		},
		Build:         func(v bench.Variant) explore.Program { return BuildWorkload(v, DefaultConfig()) },
		PreferredMode: explore.Random,
		Executions:    400,
	}
}
