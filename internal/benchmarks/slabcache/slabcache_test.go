package slabcache

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

func TestSetGetAndRecycle(t *testing.T) {
	c := New(bench.Fixed)
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	c.Init(th, 16)
	for k := memmodel.Value(1); k <= 8; k++ {
		c.Set(th, k, k*101, 3)
	}
	heapBefore := w.Heap.Used()
	c.Set(th, 3, 777, 3) // displaces k=3's item to the freelist
	c.Set(th, 3, 888, 3) // must reuse it
	if w.Heap.Used() != heapBefore+classLines(classFor(3))*memmodel.CacheLineSize {
		t.Fatalf("freelist not recycled: heap grew %d bytes over two overwrites", w.Heap.Used()-heapBefore)
	}
	for k := memmodel.Value(1); k <= 8; k++ {
		want := k * 101
		if k == 3 {
			want = 888
		}
		v, ok := c.Get(th, k)
		if !ok || v != want {
			t.Fatalf("get(%d) = (%d, %v), want %d", k, v, ok, want)
		}
	}
}

func TestClassFor(t *testing.T) {
	for _, tc := range []struct{ words, lines int }{
		{1, 1}, {5, 1}, {6, 2}, {13, 2}, {21, 3}, {24, 4},
	} {
		if got := classLines(classFor(tc.words)); got != tc.lines {
			t.Fatalf("classFor(%d) occupies %d lines, want %d", tc.words, got, tc.lines)
		}
	}
}

func TestBuggyReportsItemLinkBug(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 51,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

func TestFixedIsClean(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 51,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant reports: %v", res.ViolationKeys())
	}
	if res.Aborted != 0 {
		t.Fatalf("%d aborted executions", res.Aborted)
	}
}
