package pclht

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

func TestFunctionalPutGet(t *testing.T) {
	c := &clht{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	c.create(th)
	c.gcThreadInit(th)
	for k := memmodel.Value(1); k <= 4; k++ {
		if !c.put(th, k, k*10) {
			t.Fatalf("put(%d) failed", k)
		}
	}
	for k := memmodel.Value(1); k <= 4; k++ {
		v, ok := c.get(th, k)
		if !ok || v != k*10 {
			t.Fatalf("get(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := c.get(th, 77); ok {
		t.Fatal("get(77) should miss")
	}
}

func TestBucketFitsOneCacheLine(t *testing.T) {
	// CLHT's invariant: every bucket word shares one line, so bucket
	// updates persist in TSO order without fences.
	b := bucketAddr(0x100000, 1)
	last := b + bktValsOff + memmodel.Addr((slotsPerBkt-1)*memmodel.WordSize)
	if !memmodel.SameLine(b, last) {
		t.Fatal("bucket spills over its cache line")
	}
}

func TestBucketFull(t *testing.T) {
	c := &clht{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	c.create(th)
	for i := 0; i < slotsPerBkt; i++ {
		if !c.put(th, memmodel.Value(4*(i+1)), 1) { // all hash to bucket 0
			t.Fatalf("put %d failed early", i)
		}
	}
	if c.put(th, 16, 1) {
		t.Fatal("put into a full bucket should fail")
	}
}

func TestBuggyVariantReportsTable2Rows(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 5,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed rows: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

// The bucket update path is robust by construction (single-line bucket):
// no violations may implicate the bucket key/value stores even in the
// buggy variant.
func TestBucketUpdatesNeverFlagged(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 5,
	})
	for _, v := range res.Violations {
		if v.MissingFlush.Loc == "bucket key in clht_put" || v.MissingFlush.Loc == "bucket value in clht_put" {
			t.Fatalf("single-line bucket update flagged: %v", v)
		}
	}
}

func TestFixedVariantIsClean(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 5,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant still reports: %v", res.ViolationKeys())
	}
}

func TestRecoveryNeverAborts(t *testing.T) {
	for _, v := range []bench.Variant{bench.Buggy, bench.Fixed} {
		res := explore.Run(Build(v), explore.Options{Mode: explore.Random, Executions: 150, Seed: 13})
		if res.Aborted != 0 {
			t.Fatalf("%v: %d aborted executions", v, res.Aborted)
		}
	}
}

// Resize doubles the bucket array, rehashes every pair, and keeps all
// keys reachable.
func TestResizeRehashesAllPairs(t *testing.T) {
	c := &clht{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	c.create(th)
	c.gcThreadInit(th)
	// Fill bucket 0 (keys ≡ 0 mod 4), then one more forces a resize.
	keys := []memmodel.Value{4, 8, 12, 16}
	for _, k := range keys {
		if !c.PutResizing(th, k, k*10) {
			t.Fatalf("PutResizing(%d) failed", k)
		}
	}
	if nb := th.Load(pmem.RootAddr+htNumBktOff, "nb"); nb != 8 {
		t.Fatalf("num_buckets = %d, want 8 after resize", nb)
	}
	for _, k := range keys {
		v, ok := c.get(th, k)
		if !ok || v != k*10 {
			t.Fatalf("get(%d) = (%d, %v) after resize", k, v, ok)
		}
	}
}

// A resized table in the buggy variant re-runs the unflushed header
// publishes, so the create-site rows are reported from the resize path
// too.
func TestResizePathReportsHeaderRows(t *testing.T) {
	prog := &explore.FuncProgram{
		ProgName: "P-CLHT-resize-buggy",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				c := &clht{v: bench.Buggy}
				th := w.Thread(0)
				c.create(th)
				c.gcThreadInit(th)
				for _, k := range []memmodel.Value{4, 8, 12, 16, 5, 9} {
					c.PutResizing(th, k, k*10)
				}
				th.Store(markerAddr, 6, "driver marker")
				th.Persist(markerAddr, memmodel.WordSize, "persist driver marker")
			},
			func(w *pmem.World) {
				(&clht{v: bench.Buggy}).recover(w.Thread(0))
			},
		},
	}
	res := explore.Run(prog, explore.Options{Mode: explore.Random, Executions: 400, Seed: 45})
	_, missed := bench.MatchExpected(Benchmark().Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("resize driver missed rows: %+v", missed)
	}
}

// The fixed variant's resize is clean under exploration.
func TestResizePathFixedClean(t *testing.T) {
	prog := &explore.FuncProgram{
		ProgName: "P-CLHT-resize-fixed",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				c := &clht{v: bench.Fixed}
				th := w.Thread(0)
				c.create(th)
				c.gcThreadInit(th)
				for _, k := range []memmodel.Value{4, 8, 12, 16, 5, 9} {
					c.PutResizing(th, k, k*10)
				}
			},
			func(w *pmem.World) {
				(&clht{v: bench.Fixed}).recover(w.Thread(0))
			},
		},
	}
	res := explore.Run(prog, explore.Options{Mode: explore.Random, Executions: 400, Seed: 45})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed resize driver reports: %v", res.ViolationKeys())
	}
}
