// Package pclht ports P-CLHT, the persistent cache-line hash table from
// the RECIPE collection. CLHT keeps each bucket within a single cache
// line so that a bucket update persists atomically; the port keeps that
// property (bucket writes need no cross-line ordering) and seeds the
// three violations the paper reports in the table bootstrap code:
//
//	#29 version_list  writing to clht_t::version_list in clht_gc_thread_init
//	#30 num_buckets   writing to clht_t::num_buckets in clht_hashtable_create
//	#31 table         writing to clht_t::table in clht_hashtable_create
package pclht

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	nBuckets    = 4
	maxBuckets  = 16
	slotsPerBkt = 3
	bktLockOff  = 0
	bktKeysOff  = 8 // keys at +8..+24, values at +32..+48: one line
	bktValsOff  = 32

	// clht_t object (one line): table pointer, num_buckets,
	// version_list — written in that order.
	htTableOff   = 0
	htNumBktOff  = 8
	htVersionOff = 16

	markerAddr = pmem.RootAddr + 2*memmodel.CacheLineSize
)

// clht is the runtime handle of one simulated P-CLHT.
type clht struct {
	v bench.Variant
}

func (c *clht) persistIfFixed(th *pmem.Thread, a memmodel.Addr, size int, loc string) {
	if c.v == bench.Fixed {
		th.Persist(a, size, loc)
	}
}

func bucketAddr(table memmodel.Addr, i int) memmodel.Addr {
	return table + memmodel.Addr(i*memmodel.CacheLineSize)
}

// create is clht_hashtable_create: it allocates the bucket array and
// publishes the clht_t fields; the table and num_buckets stores are
// missing flushes — bugs #31 and #30.
func (c *clht) create(th *pmem.Thread) {
	w := th.World()
	table := w.Heap.AllocLines(nBuckets)
	// Bucket initialization is flushed (the original zeroes the pool).
	for i := 0; i < nBuckets; i++ {
		th.Store(bucketAddr(table, i)+bktLockOff, 0, "bucket lock init in clht_hashtable_create")
		th.Persist(bucketAddr(table, i), memmodel.CacheLineSize, "persist bucket init")
	}
	ht := pmem.RootAddr
	th.Store(ht+htTableOff, memmodel.Value(table), "clht_t::table in clht_hashtable_create") // bug #31
	c.persistIfFixed(th, ht+htTableOff, memmodel.WordSize, "persist clht_t::table")
	th.Store(ht+htNumBktOff, nBuckets, "clht_t::num_buckets in clht_hashtable_create") // bug #30
	c.persistIfFixed(th, ht+htNumBktOff, memmodel.WordSize, "persist clht_t::num_buckets")
}

// gcThreadInit is clht_gc_thread_init: it registers the thread's version
// slot, missing its flush — bug #29.
func (c *clht) gcThreadInit(th *pmem.Thread) {
	w := th.World()
	vl := w.Heap.AllocLines(1)
	th.Store(vl, 1, "version slot init in clht_gc_thread_init")
	th.Persist(vl, memmodel.WordSize, "persist version slot")
	th.Store(pmem.RootAddr+htVersionOff, memmodel.Value(vl), "clht_t::version_list in clht_gc_thread_init") // bug #29
	c.persistIfFixed(th, pmem.RootAddr+htVersionOff, memmodel.WordSize, "persist clht_t::version_list")
}

// put inserts a pair into its bucket. CLHT's claim to fame: the bucket
// fits one cache line, so value-then-key ordering persists in TSO order
// without fences; the original flushes the line after the update.
func (c *clht) put(th *pmem.Thread, key, val memmodel.Value) bool {
	table := memmodel.Addr(th.Load(pmem.RootAddr+htTableOff, "read clht_t::table in put"))
	n := int(th.Load(pmem.RootAddr+htNumBktOff, "read clht_t::num_buckets in put"))
	if table == 0 || n <= 0 || n > maxBuckets {
		return false
	}
	b := bucketAddr(table, int(key)%n)
	for {
		if _, ok := th.CAS(b+bktLockOff, 0, 1, "bucket lock in clht_put"); ok {
			break
		}
	}
	done := false
	for s := 0; s < slotsPerBkt; s++ {
		ka := b + bktKeysOff + memmodel.Addr(s*memmodel.WordSize)
		va := b + bktValsOff + memmodel.Addr(s*memmodel.WordSize)
		if th.Load(ka, "read bucket key in put") == 0 {
			th.Store(va, val, "bucket value in clht_put")
			th.Store(ka, key, "bucket key in clht_put")
			th.Persist(b, memmodel.CacheLineSize, "persist bucket")
			done = true
			break
		}
	}
	th.Store(b+bktLockOff, 0, "bucket unlock in clht_put")
	th.Persist(b+bktLockOff, memmodel.WordSize, "persist bucket unlock")
	return done
}

// get looks up a key.
func (c *clht) get(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	table := memmodel.Addr(th.Load(pmem.RootAddr+htTableOff, "read clht_t::table in get"))
	n := int(th.Load(pmem.RootAddr+htNumBktOff, "read clht_t::num_buckets in get"))
	if table == 0 || n <= 0 || n > maxBuckets {
		return 0, false
	}
	b := bucketAddr(table, int(key)%n)
	for s := 0; s < slotsPerBkt; s++ {
		ka := b + bktKeysOff + memmodel.Addr(s*memmodel.WordSize)
		if th.Load(ka, "read bucket key in get") == key {
			return th.Load(b+bktValsOff+memmodel.Addr(s*memmodel.WordSize), "read bucket value in get"), true
		}
	}
	return 0, false
}

// recover re-opens the table: clht fields in first-written order, then
// the buckets, then lookups.
func (c *clht) recover(th *pmem.Thread) {
	th.Load(markerAddr, "read driver marker in Recovery")
	table := memmodel.Addr(th.Load(pmem.RootAddr+htTableOff, "read clht_t::table in Recovery"))
	nb := int(th.Load(pmem.RootAddr+htNumBktOff, "read clht_t::num_buckets in Recovery"))
	vl := memmodel.Addr(th.Load(pmem.RootAddr+htVersionOff, "read clht_t::version_list in Recovery"))
	if vl != 0 {
		th.Load(vl, "read version slot in Recovery")
	}
	if table == 0 || nb <= 0 || nb > maxBuckets {
		return
	}
	for i := 0; i < nb; i++ {
		b := bucketAddr(table, i)
		th.Load(b+bktLockOff, "read bucket lock in Recovery")
		for s := 0; s < slotsPerBkt; s++ {
			th.Load(b+bktValsOff+memmodel.Addr(s*memmodel.WordSize), "read bucket value in Recovery")
			th.Load(b+bktKeysOff+memmodel.Addr(s*memmodel.WordSize), "read bucket key in Recovery")
		}
	}
	for k := memmodel.Value(1); k <= 4; k++ {
		c.get(th, k)
	}
}

// Build constructs the exploration program for a variant.
func Build(v bench.Variant) explore.Program {
	c := &clht{v: v}
	return &explore.FuncProgram{
		ProgName: "P-CLHT-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				c.create(th)
				c.gcThreadInit(th)
				for k := memmodel.Value(1); k <= 4; k++ {
					c.put(th, k, k*10)
				}
				th.Store(markerAddr, 4, "driver marker")
				th.Persist(markerAddr, memmodel.WordSize, "persist driver marker")
			},
			func(w *pmem.World) {
				c.recover(w.Thread(0))
			},
		},
	}
}

// Benchmark describes the port for the evaluation harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "P-CLHT",
		Expected: []bench.ExpectedBug{
			{ID: 29, Field: "version_list", Cause: "writing to clht_t::version_list in clht_gc_thread_init", LocSubstr: "clht_t::version_list in clht_gc_thread_init", Known: true},
			{ID: 30, Field: "num_buckets", Cause: "writing to clht_t::num_buckets in clht_hashtable_create", LocSubstr: "clht_t::num_buckets in clht_hashtable_create", Known: true},
			{ID: 31, Field: "table", Cause: "writing to clht_t::table in clht_hashtable_create", LocSubstr: "clht_t::table in clht_hashtable_create", Known: true},
		},
		Build:         Build,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}

// Resize grows the table: a new bucket array double the size is
// allocated and zeroed, every pair is rehashed into it, and the clht_t
// header is republished — re-running the clht_hashtable_create store
// sites, which is where CLHT's resize inherits bugs #30/#31 from.
func (c *clht) Resize(th *pmem.Thread) bool {
	oldTable := memmodel.Addr(th.Load(pmem.RootAddr+htTableOff, "read clht_t::table in resize"))
	oldN := int(th.Load(pmem.RootAddr+htNumBktOff, "read clht_t::num_buckets in resize"))
	if oldTable == 0 || oldN <= 0 || oldN > maxBuckets/2 {
		return false
	}
	newN := oldN * 2
	w := th.World()
	table := w.Heap.AllocLines(newN)
	for i := 0; i < newN; i++ {
		th.Store(bucketAddr(table, i)+bktLockOff, 0, "bucket lock init in clht_hashtable_create")
		th.Persist(bucketAddr(table, i), memmodel.CacheLineSize, "persist bucket init")
	}
	// Rehash every pair into the new table (persisted per bucket, as
	// the original's ht_resize_pes does).
	fill := make([]int, newN)
	for i := 0; i < oldN; i++ {
		b := bucketAddr(oldTable, i)
		for s := 0; s < slotsPerBkt; s++ {
			k := th.Load(b+bktKeysOff+memmodel.Addr(s*memmodel.WordSize), "read key in resize")
			if k == 0 {
				continue
			}
			v := th.Load(b+bktValsOff+memmodel.Addr(s*memmodel.WordSize), "read value in resize")
			ni := int(k) % newN
			if fill[ni] >= slotsPerBkt {
				return false // resize cannot place the pair; caller keeps old table
			}
			nb := bucketAddr(table, ni)
			th.Store(nb+bktValsOff+memmodel.Addr(fill[ni]*memmodel.WordSize), v, "bucket value in resize")
			th.Store(nb+bktKeysOff+memmodel.Addr(fill[ni]*memmodel.WordSize), k, "bucket key in resize")
			th.Persist(nb, memmodel.CacheLineSize, "persist resized bucket")
			fill[ni]++
		}
	}
	// Republish the header through the same (buggy) create sites.
	th.Store(pmem.RootAddr+htTableOff, memmodel.Value(table), "clht_t::table in clht_hashtable_create") // bug #31
	c.persistIfFixed(th, pmem.RootAddr+htTableOff, memmodel.WordSize, "persist resized clht_t::table")
	th.Store(pmem.RootAddr+htNumBktOff, memmodel.Value(newN), "clht_t::num_buckets in clht_hashtable_create") // bug #30
	c.persistIfFixed(th, pmem.RootAddr+htNumBktOff, memmodel.WordSize, "persist resized clht_t::num_buckets")
	return true
}

// PutResizing is put plus the resize-on-full policy.
func (c *clht) PutResizing(th *pmem.Thread, key, val memmodel.Value) bool {
	if c.put(th, key, val) {
		return true
	}
	if !c.Resize(th) {
		return false
	}
	return c.put(th, key, val)
}
