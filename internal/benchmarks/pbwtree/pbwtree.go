// Package pbwtree ports P-BwTree, the persistent Bw-Tree from the
// RECIPE collection. The port reproduces the persistence skeleton of
// the original: a mapping table of CAS-published delta chains, the
// chunked allocator (AllocationMeta) the deltas are carved from, the
// per-thread garbage-collection metadata (GCMetaData), and the epoch
// manager.
//
// Seeded bugs, rows #24–#28 of Table 2:
//
//	#24 next           updating it in GrowChunk function
//	#25 gc_metadata_p  writing to gc_metadata_p address in GCMetaData::PrepareThreadLocal
//	#26 gc_metadata_p  writing to content of gc_metadata_p in GCMetaData::PrepareThreadLocal
//	#27 tail           writing to tail in AllocationMeta
//	#28 epoch_manager  writing to epoch_manager in BwTree constructor
//
// plus four memory-management violations in the epoch/GC code (§6.2).
package pbwtree

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	// BwTree root object (two lines): the mapping-table and allocator
	// pointers share the first line; the epoch-manager pointer falls on
	// the second line of the (large, in the original) BwTree object, so
	// flushes of its siblings never cover it.
	btMappingOff  = 0
	btAllocOff    = 8
	btEpochMgrOff = memmodel.CacheLineSize

	// AllocationMeta (one line): tail bump pointer, current chunk, next
	// chunk pointer (written by GrowChunk), chunk count.
	amTailOff  = 0
	amChunkOff = 8
	amNextOff  = 16
	amCountOff = 24
	chunkSize  = 2 * memmodel.CacheLineSize

	// EpochManager (one line).
	emCurrentOff = 0
	emHeadOff    = 8

	// GCMetaData: a pointer cell (gc_metadata_p) plus the per-thread
	// metadata block it points at.
	gcPtrOff   = 0
	gcEpochOff = 0 // within the metadata block
	gcCountOff = 8

	// Mapping table: 8 slots.
	mapSlots = 8

	// Delta record layout.
	deltaKeyOff  = 0
	deltaValOff  = 8
	deltaNextOff = 16
	deltaLines   = 1

	markerAddr = pmem.RootAddr + 2*memmodel.CacheLineSize
)

// bwTree is the runtime handle for one simulated P-BwTree.
type bwTree struct {
	v bench.Variant
	// pre-crash pointer mirrors.
	mapping  memmodel.Addr
	alloc    memmodel.Addr
	epochMgr memmodel.Addr
	gcCell   memmodel.Addr
	gcBlock  memmodel.Addr
}

func (t *bwTree) persistIfFixed(th *pmem.Thread, a memmodel.Addr, size int, loc string) {
	if t.v == bench.Fixed {
		th.Persist(a, size, loc)
	}
}

// create is the BwTree constructor: it allocates the mapping table, the
// allocator, and the epoch manager; the epoch-manager publish is missing
// its flush — bug #28.
func (t *bwTree) create(th *pmem.Thread) {
	w := th.World()
	t.mapping = w.Heap.AllocLines(1)
	t.alloc = w.Heap.AllocLines(1)
	t.epochMgr = w.Heap.AllocLines(1)
	t.gcCell = w.Heap.AllocLines(1)

	th.Store(pmem.RootAddr+btMappingOff, memmodel.Value(t.mapping), "mapping_table in BwTree constructor")
	th.Store(pmem.RootAddr+btAllocOff, memmodel.Value(t.alloc), "allocation_meta in BwTree constructor")
	th.Persist(pmem.RootAddr+btMappingOff, 2*memmodel.WordSize, "persist mapping_table and allocation_meta")
	th.Store(pmem.RootAddr+btEpochMgrOff, memmodel.Value(t.epochMgr), "epoch_manager in BwTree constructor") // bug #28
	t.persistIfFixed(th, pmem.RootAddr+btEpochMgrOff, memmodel.WordSize, "persist epoch_manager")

	// AllocationMeta bootstrap: the initial chunk and the tail bump
	// pointer; the tail store is missing its flush — bug #27.
	chunk := w.Heap.AllocLines(int(chunkSize / memmodel.CacheLineSize))
	th.Store(t.alloc+amChunkOff, memmodel.Value(chunk), "chunk in AllocationMeta constructor")
	th.Persist(t.alloc+amChunkOff, memmodel.WordSize, "persist chunk")
	th.Store(t.alloc+amTailOff, memmodel.Value(chunk), "tail in AllocationMeta") // bug #27
	t.persistIfFixed(th, t.alloc+amTailOff, memmodel.WordSize, "persist tail")

	// EpochManager bootstrap: both counters are memory-management
	// violations (§6.2).
	th.Store(t.epochMgr+emCurrentOff, 1, "EpochManager::current_epoch in CreateNewEpoch") // memmgmt
	t.persistIfFixed(th, t.epochMgr+emCurrentOff, memmodel.WordSize, "persist current_epoch")
	th.Store(t.epochMgr+emHeadOff, 1, "EpochManager::head_epoch in ClearEpoch") // memmgmt
	t.persistIfFixed(th, t.epochMgr+emHeadOff, memmodel.WordSize, "persist head_epoch")
}

// prepareThreadLocal is GCMetaData::PrepareThreadLocal: it publishes the
// per-thread GC metadata pointer and initializes its content — bugs #25
// (the pointer cell) and #26 (the pointed-to block), plus two
// memory-management counter violations.
func (t *bwTree) prepareThreadLocal(th *pmem.Thread) {
	w := th.World()
	t.gcBlock = w.Heap.AllocLines(1)
	th.Store(t.gcBlock+gcEpochOff, 1, "content of gc_metadata_p in GCMetaData::PrepareThreadLocal") // bug #26
	t.persistIfFixed(th, t.gcBlock+gcEpochOff, memmodel.WordSize, "persist gc metadata content")
	th.Store(t.gcBlock+gcCountOff, 0, "GCMetaData::last_active_count in PrepareThreadLocal") // memmgmt
	t.persistIfFixed(th, t.gcBlock+gcCountOff, memmodel.WordSize, "persist last_active_count")
	th.Store(t.gcCell+gcPtrOff, memmodel.Value(t.gcBlock), "gc_metadata_p address in GCMetaData::PrepareThreadLocal") // bug #25
	t.persistIfFixed(th, t.gcCell+gcPtrOff, memmodel.WordSize, "persist gc_metadata_p")
	th.Store(t.epochMgr+emCurrentOff, 2, "EpochManager::current_epoch in JoinEpoch") // memmgmt
	t.persistIfFixed(th, t.epochMgr+emCurrentOff, memmodel.WordSize, "persist epoch join")
}

// growChunk extends the allocator with a fresh chunk; the next-pointer
// store is missing its flush — bug #24.
func (t *bwTree) growChunk(th *pmem.Thread) memmodel.Addr {
	w := th.World()
	chunk := w.Heap.AllocLines(int(chunkSize / memmodel.CacheLineSize))
	th.Store(t.alloc+amNextOff, memmodel.Value(chunk), "next in GrowChunk function") // bug #24
	t.persistIfFixed(th, t.alloc+amNextOff, memmodel.WordSize, "persist next")
	count := th.Load(t.alloc+amCountOff, "read chunk_count in GrowChunk")
	th.Store(t.alloc+amCountOff, count+1, "AllocationMeta::chunk_count in GrowChunk") // memmgmt
	t.persistIfFixed(th, t.alloc+amCountOff, memmodel.WordSize, "persist chunk_count")
	return chunk
}

// allocDelta bump-allocates a delta record, growing when the chunk is
// exhausted; the tail update repeats bug #27.
func (t *bwTree) allocDelta(th *pmem.Thread) memmodel.Addr {
	tail := memmodel.Addr(th.Load(t.alloc+amTailOff, "read tail in allocDelta"))
	chunk := memmodel.Addr(th.Load(t.alloc+amChunkOff, "read chunk in allocDelta"))
	if tail+deltaLines*memmodel.CacheLineSize > chunk+chunkSize {
		chunk = t.growChunk(th)
		tail = chunk
	}
	th.Store(t.alloc+amTailOff, memmodel.Value(tail+deltaLines*memmodel.CacheLineSize), "tail in AllocationMeta") // bug #27
	t.persistIfFixed(th, t.alloc+amTailOff, memmodel.WordSize, "persist tail bump")
	return tail
}

// insert appends a delta record to the key's mapping-table chain. The
// delta contents and the CAS publish are persisted correctly (the
// original flushes them); the surrounding allocator metadata is not.
func (t *bwTree) insert(th *pmem.Thread, key, val memmodel.Value) {
	slot := t.mapping + memmodel.Addr(int(key)%mapSlots*memmodel.WordSize)
	delta := t.allocDelta(th)
	head := th.Load(slot, "read mapping slot in insert")
	th.Store(delta+deltaKeyOff, key, "delta key in insert")
	th.Store(delta+deltaValOff, val, "delta value in insert")
	th.Store(delta+deltaNextOff, head, "delta next in insert")
	th.Persist(delta, 3*memmodel.WordSize, "persist delta record")
	for {
		if _, ok := th.CAS(slot, head, memmodel.Value(delta), "mapping slot CAS in insert"); ok {
			break
		}
		head = th.Load(slot, "re-read mapping slot in insert")
		th.Store(delta+deltaNextOff, head, "delta next retry in insert")
		th.Persist(delta+deltaNextOff, memmodel.WordSize, "persist delta next retry")
	}
	th.Persist(slot, memmodel.WordSize, "persist mapping slot")
}

// lookup walks the delta chain for a key.
func (t *bwTree) lookup(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	slot := t.mapping + memmodel.Addr(int(key)%mapSlots*memmodel.WordSize)
	for node := memmodel.Addr(th.Load(slot, "read mapping slot in lookup")); node != 0; {
		if th.Load(node+deltaKeyOff, "read delta key in lookup") == key {
			return th.Load(node+deltaValOff, "read delta value in lookup"), true
		}
		node = memmodel.Addr(th.Load(node+deltaNextOff, "read delta next in lookup"))
	}
	return 0, false
}

// recover re-reads the tree's metadata in first-written order, then the
// chains, as the original's restart path does.
func (t *bwTree) recover(th *pmem.Thread) {
	th.Load(markerAddr, "read driver marker in Recovery")
	mapping := memmodel.Addr(th.Load(pmem.RootAddr+btMappingOff, "read mapping_table in Recovery"))
	th.Load(pmem.RootAddr+btEpochMgrOff, "read epoch_manager in Recovery")
	alloc := memmodel.Addr(th.Load(pmem.RootAddr+btAllocOff, "read allocation_meta in Recovery"))
	if alloc != 0 {
		// Read the allocator words in ascending order of their last
		// write (chunk, next, count, tail) so earlier words are still
		// unresolved when later ones are observed.
		th.Load(alloc+amChunkOff, "read chunk in Recovery")
		th.Load(alloc+amNextOff, "read next in Recovery")
		th.Load(alloc+amCountOff, "read chunk_count in Recovery")
		th.Load(alloc+amTailOff, "read tail in Recovery")
	}
	if t.epochMgr != 0 {
		th.Load(t.epochMgr+emCurrentOff, "read current_epoch in Recovery")
		th.Load(t.epochMgr+emHeadOff, "read head_epoch in Recovery")
	}
	if t.gcCell != 0 {
		block := memmodel.Addr(th.Load(t.gcCell+gcPtrOff, "read gc_metadata_p in Recovery"))
		if block != 0 {
			th.Load(block+gcEpochOff, "read gc metadata content in Recovery")
			th.Load(block+gcCountOff, "read last_active_count in Recovery")
		} else if t.gcBlock != 0 {
			// The pointer was lost; the restart code still scans the
			// (statically known in the original: thread-local arena)
			// metadata block.
			th.Load(t.gcBlock+gcEpochOff, "read gc metadata content in Recovery")
		}
	}
	if mapping != 0 {
		for k := memmodel.Value(1); k <= 5; k++ {
			t.lookup(th, k)
		}
	}
}

// workloadPhase is the pre-crash phase: constructor, thread-local GC
// setup, five inserts (forcing one GrowChunk), driver marker.
func workloadPhase(t *bwTree) func(*pmem.World) {
	return func(w *pmem.World) {
		th := w.Thread(0)
		t.create(th)
		t.prepareThreadLocal(th)
		for k := memmodel.Value(1); k <= 5; k++ {
			t.insert(th, k, k*10)
		}
		th.Store(markerAddr, 5, "driver marker")
		th.Persist(markerAddr, memmodel.WordSize, "persist driver marker")
	}
}

// template runs the workload once, crash-free, on a throwaway world to
// learn the mirror addresses (mapping table, allocator, epoch manager,
// GC arena). The heap allocator is deterministic, so every execution
// allocates the same addresses; recovery treats the mirrors as the
// statically-known thread-local layout the original C++ restart code
// has, even when the crash preempted the assignment.
func template(v bench.Variant) *bwTree {
	t := &bwTree{v: v}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	w.Checker.SetEnabled(false)
	w.RunPhase(workloadPhase(t))
	return t
}

// Build constructs the exploration program for a variant. Each
// execution gets a fresh bwTree instance (pre-seeded from the template)
// so concurrent executions never share the mirror fields.
func Build(v bench.Variant) explore.Program {
	tmpl := template(v)
	return &explore.InstancedProgram{
		ProgName: "P-BwTree-" + v.String(),
		New: func() []func(*pmem.World) {
			t := &bwTree{}
			*t = *tmpl
			return []func(*pmem.World){
				workloadPhase(t),
				func(w *pmem.World) {
					t.recover(w.Thread(0))
				},
			}
		},
	}
}

// Benchmark describes the port for the evaluation harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "P-BwTree",
		Expected: []bench.ExpectedBug{
			{ID: 24, Field: "next", Cause: "updating it in GrowChunk function", LocSubstr: "next in GrowChunk function"},
			{ID: 25, Field: "gc_metadata_p", Cause: "writing to gc_metadata_p address in GCMetaData::PrepareThreadLocal", LocSubstr: "gc_metadata_p address in GCMetaData::PrepareThreadLocal", Known: true},
			{ID: 26, Field: "gc_metadata_p", Cause: "writing to content of gc_metadata_p in GCMetaData::PrepareThreadLocal", LocSubstr: "content of gc_metadata_p in GCMetaData::PrepareThreadLocal", Known: true},
			{ID: 27, Field: "tail", Cause: "writing to tail in AllocationMeta", LocSubstr: "tail in AllocationMeta", Known: true},
			{ID: 28, Field: "epoch_manager", Cause: "writing to epoch_manager in BwTree constructor", LocSubstr: "epoch_manager in BwTree constructor", Known: true},
			// Memory-management violations (§6.2: four more in P-BwTree).
			{Field: "EpochManager::current_epoch", Cause: "CreateNewEpoch", LocSubstr: "current_epoch in CreateNewEpoch", MemMgmt: true},
			{Field: "EpochManager::current_epoch", Cause: "JoinEpoch", LocSubstr: "current_epoch in JoinEpoch", MemMgmt: true},
			{Field: "EpochManager::head_epoch", Cause: "ClearEpoch", LocSubstr: "head_epoch in ClearEpoch", MemMgmt: true},
			{Field: "AllocationMeta::chunk_count", Cause: "GrowChunk", LocSubstr: "chunk_count in GrowChunk", MemMgmt: true},
		},
		Build:         Build,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}

// consolidationThreshold is the delta-chain length that triggers a
// consolidation, as in the original's adaptive policy.
const consolidationThreshold = 3

// chainLength walks a mapping slot's delta chain.
func (t *bwTree) chainLength(th *pmem.Thread, slot memmodel.Addr) int {
	n := 0
	for node := memmodel.Addr(th.Load(slot, "read mapping slot in chainLength")); node != 0 && n < 64; n++ {
		node = memmodel.Addr(th.Load(node+deltaNextOff, "read delta next in chainLength"))
	}
	return n
}

// consolidate replaces a long delta chain with a freshly-built base
// node: the live (key, value) pairs are folded newest-wins into one
// record block, the block is persisted, the mapping slot is CAS-swapped
// to it, and the old chain is retired through the epoch machinery. The
// consolidation path follows the original's discipline (persisted); the
// allocator metadata it goes through still carries bugs #24/#27.
func (t *bwTree) consolidate(th *pmem.Thread, slot memmodel.Addr) {
	head := memmodel.Addr(th.Load(slot, "read mapping slot in consolidate"))
	if head == 0 {
		return
	}
	// Fold the chain newest-wins.
	type kv struct{ k, v memmodel.Value }
	var pairs []kv
	seen := map[memmodel.Value]bool{}
	for node := head; node != 0; {
		k := th.Load(node+deltaKeyOff, "read delta key in consolidate")
		if !seen[k] {
			seen[k] = true
			pairs = append(pairs, kv{k, th.Load(node+deltaValOff, "read delta value in consolidate")})
		}
		node = memmodel.Addr(th.Load(node+deltaNextOff, "read delta next in consolidate"))
	}
	// Build the consolidated chain bottom-up from fresh deltas (the
	// port's base node is a compact chain with no duplicates).
	var newHead memmodel.Addr
	for i := len(pairs) - 1; i >= 0; i-- {
		d := t.allocDelta(th)
		th.Store(d+deltaKeyOff, pairs[i].k, "base key in consolidate")
		th.Store(d+deltaValOff, pairs[i].v, "base value in consolidate")
		th.Store(d+deltaNextOff, memmodel.Value(newHead), "base next in consolidate")
		th.Persist(d, 3*memmodel.WordSize, "persist base record")
		newHead = d
	}
	if _, ok := th.CAS(slot, memmodel.Value(head), memmodel.Value(newHead), "mapping slot CAS in consolidate"); !ok {
		return // concurrent update won; retry next time
	}
	th.Persist(slot, memmodel.WordSize, "persist consolidated slot")
	// Retire the old chain's epoch.
	cur := th.Load(t.epochMgr+emCurrentOff, "read current_epoch in consolidate")
	th.Store(t.epochMgr+emCurrentOff, cur+1, "EpochManager::current_epoch in CreateNewEpoch") // memmgmt
	t.persistIfFixed(th, t.epochMgr+emCurrentOff, memmodel.WordSize, "persist epoch after consolidate")
}

// InsertConsolidating is insert plus the adaptive consolidation check.
func (t *bwTree) InsertConsolidating(th *pmem.Thread, key, val memmodel.Value) {
	t.insert(th, key, val)
	slot := t.mapping + memmodel.Addr(int(key)%mapSlots*memmodel.WordSize)
	if t.chainLength(th, slot) > consolidationThreshold {
		t.consolidate(th, slot)
	}
}
