package pbwtree

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

func TestFunctionalInsertLookup(t *testing.T) {
	tr := &bwTree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	tr.create(th)
	tr.prepareThreadLocal(th)
	for k := memmodel.Value(1); k <= 5; k++ {
		tr.insert(th, k, k*10)
	}
	for k := memmodel.Value(1); k <= 5; k++ {
		v, ok := tr.lookup(th, k)
		if !ok || v != k*10 {
			t.Fatalf("lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := tr.lookup(th, 42); ok {
		t.Fatal("lookup(42) should miss")
	}
}

func TestDeltaChainShadowing(t *testing.T) {
	// A second insert of the same key prepends a newer delta; lookups
	// must see the newest value.
	tr := &bwTree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	tr.create(th)
	tr.prepareThreadLocal(th)
	tr.insert(th, 1, 10)
	tr.insert(th, 1, 20)
	if v, ok := tr.lookup(th, 1); !ok || v != 20 {
		t.Fatalf("lookup(1) = (%d, %v), want (20, true)", v, ok)
	}
}

func TestGrowChunkTriggered(t *testing.T) {
	tr := &bwTree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	tr.create(th)
	tr.prepareThreadLocal(th)
	for k := memmodel.Value(1); k <= 5; k++ {
		tr.insert(th, k, k*10)
	}
	if got := th.Load(tr.alloc+amCountOff, "count"); got < 1 {
		t.Fatalf("chunk_count = %d, want >= 1 (GrowChunk ran)", got)
	}
}

func TestBuggyVariantReportsTable2Rows(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 4,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed rows: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

func TestMemMgmtViolationCount(t *testing.T) {
	var mm int
	for _, eb := range Benchmark().Expected {
		if eb.MemMgmt {
			mm++
		}
	}
	if mm != 4 {
		t.Fatalf("memory-management rows = %d, want 4 (§6.2)", mm)
	}
}

func TestFixedVariantIsClean(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 4,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant still reports: %v", res.ViolationKeys())
	}
}

func TestRecoveryNeverAborts(t *testing.T) {
	for _, v := range []bench.Variant{bench.Buggy, bench.Fixed} {
		res := explore.Run(Build(v), explore.Options{Mode: explore.Random, Executions: 150, Seed: 12})
		if res.Aborted != 0 {
			t.Fatalf("%v: %d aborted executions", v, res.Aborted)
		}
	}
}

// Consolidation folds a long delta chain into a compact base chain with
// newest-wins semantics, preserving every lookup.
func TestConsolidationFoldsChain(t *testing.T) {
	tr := &bwTree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	tr.create(th)
	tr.prepareThreadLocal(th)
	// Five updates of the same key build a 5-deep chain, then trigger
	// consolidation.
	for i := memmodel.Value(1); i <= 5; i++ {
		tr.InsertConsolidating(th, 1, i*10)
	}
	slot := tr.mapping + memmodel.Addr(1%mapSlots*memmodel.WordSize)
	if n := tr.chainLength(th, slot); n > consolidationThreshold {
		t.Fatalf("chain length %d after consolidation, want <= %d", n, consolidationThreshold)
	}
	if v, ok := tr.lookup(th, 1); !ok || v != 50 {
		t.Fatalf("lookup(1) = (%d, %v), want newest (50, true)", v, ok)
	}
}

// Consolidation must keep distinct keys in the same slot.
func TestConsolidationKeepsAllKeys(t *testing.T) {
	tr := &bwTree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	tr.create(th)
	tr.prepareThreadLocal(th)
	// Keys 1 and 9 share slot 1 (mod 8).
	tr.InsertConsolidating(th, 1, 100)
	tr.InsertConsolidating(th, 9, 900)
	tr.InsertConsolidating(th, 1, 101)
	tr.InsertConsolidating(th, 9, 901)
	tr.InsertConsolidating(th, 1, 102)
	if v, ok := tr.lookup(th, 1); !ok || v != 102 {
		t.Fatalf("lookup(1) = (%d, %v)", v, ok)
	}
	if v, ok := tr.lookup(th, 9); !ok || v != 901 {
		t.Fatalf("lookup(9) = (%d, %v)", v, ok)
	}
}

// The consolidated image survives a crash intact in the fixed variant.
func TestConsolidationDurable(t *testing.T) {
	tr := &bwTree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	tr.create(th)
	tr.prepareThreadLocal(th)
	for i := memmodel.Value(1); i <= 5; i++ {
		tr.InsertConsolidating(th, 1, i*10)
	}
	w.Crash()
	if v, ok := tr.lookup(th, 1); !ok || v != 50 {
		t.Fatalf("post-crash lookup(1) = (%d, %v), want (50, true)", v, ok)
	}
}
