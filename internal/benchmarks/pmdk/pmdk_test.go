package pmdk

import (
	"strings"
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/pmlib"
)

func fixedPool(t *testing.T) (*pmem.Thread, *pmlib.Pool) {
	t.Helper()
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	return th, pmlib.Create(th, PoolBase, pmlib.Options{Variant: bench.Fixed})
}

func TestBTreeExample(t *testing.T) {
	th, p := fixedPool(t)
	bt := NewBTree(p, th)
	// Insert out of order; lookups must still succeed (sorted shifts).
	for _, k := range []memmodel.Value{3, 1, 2} {
		if !bt.Insert(p, th, k, k+100) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	for k := memmodel.Value(1); k <= 3; k++ {
		if v, ok := bt.Lookup(th, k); !ok || v != k+100 {
			t.Fatalf("lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
	// Keys must be sorted in the node.
	prev := memmodel.Value(0)
	for i := 0; i < 3; i++ {
		k := th.Load(bt.keyAddr(i), "check sorted")
		if k < prev {
			t.Fatalf("keys not sorted at %d: %d < %d", i, k, prev)
		}
		prev = k
	}
}

func TestCTreeExample(t *testing.T) {
	th, p := fixedPool(t)
	ct := NewCTree(p, th)
	for _, k := range []memmodel.Value{5, 2, 8, 1} {
		ct.Insert(p, th, k, k*2)
	}
	for _, k := range []memmodel.Value{5, 2, 8, 1} {
		if v, ok := ct.Lookup(th, k); !ok || v != k*2 {
			t.Fatalf("lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := ct.Lookup(th, 42); ok {
		t.Fatal("lookup(42) should miss")
	}
}

func TestRBTreeExample(t *testing.T) {
	th, p := fixedPool(t)
	rb := NewRBTree(p, th)
	for _, k := range []memmodel.Value{4, 6, 2} {
		rb.Insert(p, th, k, k*3)
	}
	for _, k := range []memmodel.Value{4, 6, 2} {
		if v, ok := rb.Lookup(th, k); !ok || v != k*3 {
			t.Fatalf("lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
}

func TestHashmapTxExample(t *testing.T) {
	th, p := fixedPool(t)
	h := NewHashmapTx(p, th)
	for k := memmodel.Value(1); k <= 6; k++ { // forces chaining
		h.Insert(p, th, k, k*7)
	}
	for k := memmodel.Value(1); k <= 6; k++ {
		if v, ok := h.Lookup(th, k); !ok || v != k*7 {
			t.Fatalf("lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
}

func TestHashmapAtomicExample(t *testing.T) {
	th, p := fixedPool(t)
	h := NewHashmapAtomic(p, th)
	for k := memmodel.Value(1); k <= 3; k++ {
		if !h.Insert(p, th, k, k*9) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	for k := memmodel.Value(1); k <= 3; k++ {
		if v, ok := h.Lookup(th, k); !ok || v != k*9 {
			t.Fatalf("lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
	if got := th.Load(h.base, "count"); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

// The buggy library surfaces rows #32–#35 when the examples run under
// exploration.
func TestBuggyLibraryReportsTable2Rows(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 7,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed rows: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

// With checksum annotations (§6.4), the harmless rows #33–#35 disappear
// while the genuine pool-header bug #32 remains.
func TestChecksumAnnotationsSuppressHarmlessRows(t *testing.T) {
	res := explore.Run(BuildAnnotated(bench.Buggy, true), explore.Options{
		Mode: explore.Random, Executions: 400, Seed: 7,
	})
	var got32 bool
	for _, v := range res.Violations {
		loc := v.MissingFlush.Loc
		if strings.Contains(loc, "ulog") || strings.Contains(loc, "ULOG") {
			t.Fatalf("annotated run still reports a ulog row: %v", v)
		}
		if strings.Contains(loc, "memcpy on pool object") {
			got32 = true
		}
	}
	if !got32 {
		t.Fatal("annotations must not suppress the genuine #32 bug")
	}
}

func TestFixedLibraryIsClean(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 7,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed library still reports: %v", res.ViolationKeys())
	}
}

func TestRecoveryNeverAborts(t *testing.T) {
	for _, v := range []bench.Variant{bench.Buggy, bench.Fixed} {
		res := explore.Run(Build(v), explore.Options{Mode: explore.Random, Executions: 150, Seed: 17})
		if res.Aborted != 0 {
			t.Fatalf("%v: %d aborted executions", v, res.Aborted)
		}
	}
}
