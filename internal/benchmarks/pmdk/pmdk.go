// Package pmdk ports the five PMDK data-structure examples the paper
// evaluates (§6.1): BTree, CTree, RBTree, Hashmap_atomic, and
// Hashmap_tx, implemented on top of the pmlib pool and redo-log
// transaction API. The examples themselves follow the library's
// documented discipline; the violations PSan reports here (Table 2 rows
// #32–#35) live inside the library — the pool-header memcpy and the
// ulog machinery — exactly as in the paper, where rows #33–#35 are the
// checksum-protected "harmless" class of §6.4.
package pmdk

import (
	"fmt"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/pmlib"
)

// PoolBase is where the drivers place the pool, above the harness
// heap's own arena.
const PoolBase = memmodel.Addr(0x800000)

// Directory slots inside the pool root: one per example structure.
const (
	slotBTree = iota
	slotCTree
	slotRBTree
	slotHashTx
	slotHashAtomic
	numSlots
)

// --- BTree example: a sorted node updated inside transactions ---

const btreeCap = 6

// BTree is the btree example: keys/values arrays plus a count word, all
// updated through redo-log transactions.
type BTree struct{ node memmodel.Addr }

// NewBTree allocates the example's root node.
func NewBTree(p *pmlib.Pool, th *pmem.Thread) *BTree {
	node := p.AllocLines(th, 3)
	return &BTree{node: node}
}

func (b *BTree) keyAddr(i int) memmodel.Addr {
	return b.node + memmodel.CacheLineSize + memmodel.Addr(i*memmodel.WordSize)
}

func (b *BTree) valAddr(i int) memmodel.Addr {
	return b.node + 2*memmodel.CacheLineSize + memmodel.Addr(i*memmodel.WordSize)
}

// Insert adds a pair, shifting larger keys right, inside one tx.
func (b *BTree) Insert(p *pmlib.Pool, th *pmem.Thread, key, val memmodel.Value) bool {
	n := int(th.Load(b.node, "btree read count"))
	if n >= btreeCap {
		return false
	}
	pos := 0
	for pos < n && th.Load(b.keyAddr(pos), "btree probe key") < key {
		pos++
	}
	tx := p.TxBegin(th)
	for i := n; i > pos; i-- {
		tx.Set(b.keyAddr(i), th.Load(b.keyAddr(i-1), "btree shift key"))
		tx.Set(b.valAddr(i), th.Load(b.valAddr(i-1), "btree shift val"))
	}
	tx.Set(b.keyAddr(pos), key)
	tx.Set(b.valAddr(pos), val)
	tx.Set(b.node, memmodel.Value(n+1))
	tx.Commit()
	return true
}

// Lookup finds a key.
func (b *BTree) Lookup(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	n := int(th.Load(b.node, "btree read count"))
	if n > btreeCap {
		return 0, false
	}
	for i := 0; i < n; i++ {
		if th.Load(b.keyAddr(i), "btree read key") == key {
			return th.Load(b.valAddr(i), "btree read val"), true
		}
	}
	return 0, false
}

// --- CTree example: a crit-bit-style binary tree with tx link updates ---

// CTree is the ctree example; nodes are {key, val, left, right}.
type CTree struct{ rootCell memmodel.Addr }

// NewCTree allocates the root pointer cell.
func NewCTree(p *pmlib.Pool, th *pmem.Thread) *CTree {
	return &CTree{rootCell: p.Alloc(th, memmodel.WordSize)}
}

const (
	ctKeyOff   = 0
	ctValOff   = 8
	ctLeftOff  = 16
	ctRightOff = 24
)

// Insert allocates a node and links it in one transaction.
func (c *CTree) Insert(p *pmlib.Pool, th *pmem.Thread, key, val memmodel.Value) {
	node := p.Alloc(th, 4*memmodel.WordSize)
	th.Store(node+ctKeyOff, key, "ctree node key init")
	th.Store(node+ctValOff, val, "ctree node val init")
	th.Persist(node, 4*memmodel.WordSize, "persist ctree node")
	// Find the link to update.
	link := c.rootCell
	for {
		cur := memmodel.Addr(th.Load(link, "ctree read link"))
		if cur == 0 {
			break
		}
		if key < th.Load(cur+ctKeyOff, "ctree read node key") {
			link = cur + ctLeftOff
		} else {
			link = cur + ctRightOff
		}
	}
	tx := p.TxBegin(th)
	tx.Set(link, memmodel.Value(node))
	tx.Commit()
}

// Lookup finds a key.
func (c *CTree) Lookup(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	node := memmodel.Addr(th.Load(c.rootCell, "ctree read root"))
	for node != 0 {
		k := th.Load(node+ctKeyOff, "ctree read key")
		if k == key {
			return th.Load(node+ctValOff, "ctree read val"), true
		}
		if key < k {
			node = memmodel.Addr(th.Load(node+ctLeftOff, "ctree read left"))
		} else {
			node = memmodel.Addr(th.Load(node+ctRightOff, "ctree read right"))
		}
	}
	return 0, false
}

// --- RBTree example: a BST with a color word, links updated in txs ---
// (The PMDK example's rebalancing is orthogonal to its persistence
// skeleton; this port keeps the tx-guarded link/color updates.)

// RBTree is the rbtree example.
type RBTree struct{ rootCell memmodel.Addr }

// NewRBTree allocates the root pointer cell.
func NewRBTree(p *pmlib.Pool, th *pmem.Thread) *RBTree {
	return &RBTree{rootCell: p.Alloc(th, memmodel.WordSize)}
}

const (
	rbKeyOff   = 0
	rbValOff   = 8
	rbLeftOff  = 16
	rbRightOff = 24
	rbColorOff = 32
)

// Insert links a new red node through the redo log (including the
// ULOG_OPERATION_OR recolor — row #35's path), then runs the example's
// recolor pass as an undo-log transaction: the parent's color word is
// snapshotted (pmemobj_tx_add_range) before being rewritten in place,
// exercising libpmemobj's other log flavor.
func (r *RBTree) Insert(p *pmlib.Pool, th *pmem.Thread, key, val memmodel.Value) {
	node := p.Alloc(th, 5*memmodel.WordSize)
	th.Store(node+rbKeyOff, key, "rbtree node key init")
	th.Store(node+rbValOff, val, "rbtree node val init")
	th.Store(node+rbColorOff, 1, "rbtree node color init (red)")
	th.Persist(node, 5*memmodel.WordSize, "persist rbtree node")
	link := r.rootCell
	parent := memmodel.Addr(0)
	for {
		cur := memmodel.Addr(th.Load(link, "rbtree read link"))
		if cur == 0 {
			break
		}
		parent = cur
		if key < th.Load(cur+rbKeyOff, "rbtree read node key") {
			link = cur + rbLeftOff
		} else {
			link = cur + rbRightOff
		}
	}
	tx := p.TxBegin(th)
	tx.Set(link, memmodel.Value(node))
	tx.Or(node+rbColorOff, 2) // recolor via ULOG_OPERATION_OR — row #35's path
	tx.Commit()
	if parent != 0 {
		// Recolor the parent black in place under an undo snapshot.
		utx := p.UndoTxBegin(th)
		utx.Snapshot(parent + rbColorOff)
		th.Store(parent+rbColorOff, 2, "rbtree parent recolor")
		th.Persist(parent+rbColorOff, memmodel.WordSize, "persist parent recolor")
		utx.Commit()
	}
}

// Lookup finds a key.
func (r *RBTree) Lookup(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	node := memmodel.Addr(th.Load(r.rootCell, "rbtree read root"))
	for node != 0 {
		k := th.Load(node+rbKeyOff, "rbtree read key")
		if k == key {
			return th.Load(node+rbValOff, "rbtree read val"), true
		}
		if key < k {
			node = memmodel.Addr(th.Load(node+rbLeftOff, "rbtree read left"))
		} else {
			node = memmodel.Addr(th.Load(node+rbRightOff, "rbtree read right"))
		}
	}
	return 0, false
}

// --- Hashmap_tx example: chained buckets, links updated in txs ---

const hashTxBuckets = 4

// HashmapTx is the hashmap_tx example.
type HashmapTx struct{ buckets memmodel.Addr }

// NewHashmapTx allocates the bucket array.
func NewHashmapTx(p *pmlib.Pool, th *pmem.Thread) *HashmapTx {
	return &HashmapTx{buckets: p.AllocLines(th, 1)}
}

const (
	heKeyOff  = 0
	heValOff  = 8
	heNextOff = 16
)

// Insert prepends an entry to its bucket chain in one tx.
func (h *HashmapTx) Insert(p *pmlib.Pool, th *pmem.Thread, key, val memmodel.Value) {
	entry := p.Alloc(th, 3*memmodel.WordSize)
	th.Store(entry+heKeyOff, key, "hashmap_tx entry key init")
	th.Store(entry+heValOff, val, "hashmap_tx entry val init")
	th.Persist(entry, 3*memmodel.WordSize, "persist hashmap_tx entry")
	slot := h.buckets + memmodel.Addr(int(key)%hashTxBuckets*memmodel.WordSize)
	head := th.Load(slot, "hashmap_tx read head")
	tx := p.TxBegin(th)
	tx.Set(entry+heNextOff, head)
	tx.Set(slot, memmodel.Value(entry))
	tx.Commit()
}

// Lookup finds a key.
func (h *HashmapTx) Lookup(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	slot := h.buckets + memmodel.Addr(int(key)%hashTxBuckets*memmodel.WordSize)
	for e := memmodel.Addr(th.Load(slot, "hashmap_tx read head")); e != 0; {
		if th.Load(e+heKeyOff, "hashmap_tx read key") == key {
			return th.Load(e+heValOff, "hashmap_tx read val"), true
		}
		e = memmodel.Addr(th.Load(e+heNextOff, "hashmap_tx read next"))
	}
	return 0, false
}

// --- Hashmap_atomic example: direct libpmem-style stores ---

const hashAtBuckets = 4

// HashmapAtomic is the hashmap_atomic example: open addressing with a
// value-then-key publish and per-slot persists (the correct low-level
// discipline), plus an element counter maintained with FAA.
type HashmapAtomic struct{ base memmodel.Addr }

// NewHashmapAtomic allocates the table: a count word plus slot pairs.
func NewHashmapAtomic(p *pmlib.Pool, th *pmem.Thread) *HashmapAtomic {
	return &HashmapAtomic{base: p.AllocLines(th, 3)}
}

func (h *HashmapAtomic) slotKey(i int) memmodel.Addr {
	return h.base + memmodel.CacheLineSize + memmodel.Addr(i*memmodel.WordSize)
}

func (h *HashmapAtomic) slotVal(i int) memmodel.Addr {
	return h.base + 2*memmodel.CacheLineSize + memmodel.Addr(i*memmodel.WordSize)
}

// Insert publishes value before key, persisting each, then bumps the
// counter atomically.
func (h *HashmapAtomic) Insert(p *pmlib.Pool, th *pmem.Thread, key, val memmodel.Value) bool {
	for probe := 0; probe < hashAtBuckets; probe++ {
		i := (int(key) + probe) % hashAtBuckets
		if th.Load(h.slotKey(i), "hashmap_atomic probe") == 0 {
			th.Store(h.slotVal(i), val, "hashmap_atomic value publish")
			th.Persist(h.slotVal(i), memmodel.WordSize, "persist hashmap_atomic value")
			th.Store(h.slotKey(i), key, "hashmap_atomic key publish")
			th.Persist(h.slotKey(i), memmodel.WordSize, "persist hashmap_atomic key")
			th.FAA(h.base, 1, "hashmap_atomic count FAA")
			th.Persist(h.base, memmodel.WordSize, "persist hashmap_atomic count")
			return true
		}
	}
	return false
}

// Lookup finds a key.
func (h *HashmapAtomic) Lookup(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	for probe := 0; probe < hashAtBuckets; probe++ {
		i := (int(key) + probe) % hashAtBuckets
		if th.Load(h.slotKey(i), "hashmap_atomic read key") == key {
			return th.Load(h.slotVal(i), "hashmap_atomic read val"), true
		}
	}
	return 0, false
}

// --- driver ---

// workload runs each example against a freshly created pool and records
// the structures' cells in the pool root directory.
func workload(w *pmem.World, opt pmlib.Options) {
	th := w.Thread(0)
	p := pmlib.Create(th, PoolBase, opt)
	dir := p.AllocLines(th, 1)
	p.SetRoot(th, dir)

	bt := NewBTree(p, th)
	ct := NewCTree(p, th)
	rb := NewRBTree(p, th)
	htx := NewHashmapTx(p, th)
	hat := NewHashmapAtomic(p, th)
	cells := []memmodel.Addr{bt.node, ct.rootCell, rb.rootCell, htx.buckets, hat.base}
	for i, cell := range cells {
		th.Store(dir+memmodel.Addr(i*memmodel.WordSize), memmodel.Value(cell), "pool directory publish")
	}
	th.Persist(dir, numSlots*memmodel.WordSize, "persist pool directory")

	for k := memmodel.Value(1); k <= 3; k++ {
		bt.Insert(p, th, k, k+100)
		ct.Insert(p, th, k, k+200)
		rb.Insert(p, th, k, k+300)
		htx.Insert(p, th, k, k+400)
		hat.Insert(p, th, k, k+500)
	}
}

// recovery reopens the pool, replays the redo log, and walks every
// structure.
func recovery(w *pmem.World, opt pmlib.Options) {
	th := w.Thread(0)
	p, ok := pmlib.Open(th, PoolBase, opt)
	if !ok {
		return
	}
	p.Recover(th)
	p.RecoverUndo(th)
	dir := p.Root(th)
	if dir == 0 {
		return
	}
	read := func(i int) memmodel.Addr {
		return memmodel.Addr(th.Load(dir+memmodel.Addr(i*memmodel.WordSize), "read pool directory"))
	}
	if node := read(slotBTree); node != 0 {
		bt := &BTree{node: node}
		for k := memmodel.Value(1); k <= 3; k++ {
			if v, ok := bt.Lookup(th, k); ok && v != k+100 {
				w.RecordAssertFailure(fmt.Sprintf("btree[%d] = %d", uint64(k), uint64(v)))
			}
		}
	}
	if cell := read(slotCTree); cell != 0 {
		ct := &CTree{rootCell: cell}
		for k := memmodel.Value(1); k <= 3; k++ {
			ct.Lookup(th, k)
		}
	}
	if cell := read(slotRBTree); cell != 0 {
		rb := &RBTree{rootCell: cell}
		for k := memmodel.Value(1); k <= 3; k++ {
			rb.Lookup(th, k)
		}
	}
	if cell := read(slotHashTx); cell != 0 {
		htx := &HashmapTx{buckets: cell}
		for k := memmodel.Value(1); k <= 3; k++ {
			htx.Lookup(th, k)
		}
	}
	if cell := read(slotHashAtomic); cell != 0 {
		hat := &HashmapAtomic{base: cell}
		for k := memmodel.Value(1); k <= 3; k++ {
			hat.Lookup(th, k)
		}
	}
}

// Build constructs the exploration program for a variant (checksum
// annotations off, matching the Table 2 runs).
func Build(v bench.Variant) explore.Program {
	return BuildAnnotated(v, false)
}

// BuildAnnotated also controls the §6.4 checksum annotations.
func BuildAnnotated(v bench.Variant, annotate bool) explore.Program {
	opt := pmlib.Options{Variant: v, AnnotateChecksums: annotate}
	name := "PMDK-" + v.String()
	if annotate {
		name += "-annotated"
	}
	return &explore.FuncProgram{
		ProgName: name,
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) { workload(w, opt) },
			func(w *pmem.World) { recovery(w, opt) },
		},
	}
}

// Benchmark describes the port for the evaluation harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "PMDK",
		Expected: []bench.ExpectedBug{
			{ID: 32, Field: "PMEMobjpool", Cause: "memcpy operation on pool object in libpmemobj library", LocSubstr: "memcpy on pool object in libpmemobj"},
			{ID: 33, Field: "ulog", Cause: "storing ulog in libpmemobj library", LocSubstr: "storing ulog in libpmemobj library"},
			{ID: 34, Field: "ulog_entry_base", Cause: "memcpy in applying modifications on a single ulog_entry_base", LocSubstr: "memcpy on a single ulog_entry_base"},
			{ID: 35, Field: "ulog_entry_base", Cause: "applying ULOG_OPERATION_OR on a single ulog_entry_base", LocSubstr: "ULOG_OPERATION_OR on a single ulog_entry_base"},
		},
		Build:         Build,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}
