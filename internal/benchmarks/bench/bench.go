// Package bench defines the common shape of the benchmark ports used in
// the paper's evaluation (§6.1): CCEH, FAST_FAIR, the RECIPE indexes
// (P-ART, P-BwTree, P-CLHT, P-Masstree), the PMDK examples, and the
// Redis/memcached-style KV store.
//
// Each port reproduces the benchmark's *persistence skeleton* — the
// sequence of stores, flushes, and fences around its data-structure
// operations — with the paper's Table 2 bugs seeded at the analogous
// code sites. Every port has a Buggy variant (bugs present, as shipped)
// and a Fixed variant (PSan's suggested flushes applied), and declares
// the violations PSan is expected to report so the harness can check
// coverage row by row.
package bench

import (
	"strings"

	"repro/internal/core"
	"repro/internal/explore"
)

// Variant selects whether a port runs with its seeded bugs or with the
// fixes applied.
type Variant int

const (
	// Buggy runs the port as the original benchmark shipped, with the
	// Table 2 bugs present.
	Buggy Variant = iota
	// Fixed runs the port with PSan's suggested flushes/fences applied.
	Fixed
)

// String names the variant.
func (v Variant) String() string {
	if v == Fixed {
		return "fixed"
	}
	return "buggy"
}

// ExpectedBug is one row of the paper's Table 2 (or one of the
// memory-management violations discussed alongside it).
type ExpectedBug struct {
	// ID is the row number in Table 2; 0 for the extra memory-management
	// violations (§6.2).
	ID int
	// Field is the memory location listed in the table.
	Field string
	// Cause is the table's "Cause of Robustness Violation" text.
	Cause string
	// LocSubstr matches the violation: a report counts for this row if
	// its missing-flush store's location label contains this substring.
	LocSubstr string
	// MemMgmt marks the allocator/GC violations reported separately in
	// §6.2.
	MemMgmt bool
	// Known marks bugs that prior tools had already reported (rows
	// with * in Table 2).
	Known bool
}

// Benchmark is one port: a named program family with expected bugs.
type Benchmark struct {
	// Name as it appears in the paper's tables.
	Name string
	// Expected lists the violations the Buggy variant must produce.
	Expected []ExpectedBug
	// Build constructs the exploration program for a variant.
	Build func(v Variant) explore.Program
	// PreferredMode is the exploration mode §6.1 uses for the benchmark
	// (model checking for the indexes, random for the servers).
	PreferredMode explore.Mode
	// Executions is the exploration budget in random mode.
	Executions int
}

// Coverage maps expected bugs to the violations that matched them.
type Coverage struct {
	Bug     ExpectedBug
	Matches []*core.Violation
}

// MatchExpected checks which expected bugs the reported violations
// cover. A violation matches a row when its missing-flush location
// contains the row's substring.
func MatchExpected(expected []ExpectedBug, violations []*core.Violation) (covered []Coverage, missed []ExpectedBug) {
	for _, eb := range expected {
		var ms []*core.Violation
		for _, v := range violations {
			if strings.Contains(v.MissingFlush.Loc, eb.LocSubstr) {
				ms = append(ms, v)
			}
		}
		if len(ms) > 0 {
			covered = append(covered, Coverage{Bug: eb, Matches: ms})
		} else {
			missed = append(missed, eb)
		}
	}
	return covered, missed
}

// UnexpectedViolations returns the violations that match no expected
// row — useful to keep Fixed variants honest and reports tidy.
func UnexpectedViolations(expected []ExpectedBug, violations []*core.Violation) []*core.Violation {
	var out []*core.Violation
	for _, v := range violations {
		matched := false
		for _, eb := range expected {
			if strings.Contains(v.MissingFlush.Loc, eb.LocSubstr) {
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, v)
		}
	}
	return out
}
