// Package pmasstree ports P-Masstree from the RECIPE collection: a trie
// of B+-tree-like leaves with a permutation word that publishes entries
// atomically. The original P-Masstree has no rows in the paper's
// Table 2 — its persistence discipline (write slot, persist slot, then
// publish through the permutation word and persist it) is sound — so
// this port serves as the negative control in bug detection and as a
// workload in the Table 3 performance comparison.
package pmasstree

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	leafFanout = 8

	// Leaf layout: permutation word (count in low bits, publication
	// order implicit in slot order), then key and value arrays.
	leafPermOff = 0
	leafKeysOff = memmodel.CacheLineSize
	leafValsOff = 2 * memmodel.CacheLineSize

	markerAddr = pmem.RootAddr + 2*memmodel.CacheLineSize
)

// masstree is the runtime handle of one simulated P-Masstree.
type masstree struct {
	v bench.Variant
}

func keyAddr(leaf memmodel.Addr, i int) memmodel.Addr {
	return leaf + leafKeysOff + memmodel.Addr(i*memmodel.WordSize)
}

func valAddr(leaf memmodel.Addr, i int) memmodel.Addr {
	return leaf + leafValsOff + memmodel.Addr(i*memmodel.WordSize)
}

// create builds the root leaf and publishes it durably.
func (m *masstree) create(th *pmem.Thread) memmodel.Addr {
	w := th.World()
	leaf := w.Heap.AllocLines(3)
	th.Store(leaf+leafPermOff, 0, "permutation init in leaf constructor")
	th.Persist(leaf+leafPermOff, memmodel.WordSize, "persist permutation init")
	th.Store(pmem.RootAddr, memmodel.Value(leaf), "root in masstree constructor")
	th.Persist(pmem.RootAddr, memmodel.WordSize, "persist root")
	return leaf
}

// put inserts with the sound discipline: slot writes are persisted
// before the permutation word that publishes them, and the permutation
// update itself is persisted before returning.
func (m *masstree) put(th *pmem.Thread, key, val memmodel.Value) bool {
	leaf := memmodel.Addr(th.Load(pmem.RootAddr, "read root in put"))
	perm := th.Load(leaf+leafPermOff, "read permutation in put")
	n := int(perm)
	if n >= leafFanout {
		return false
	}
	th.Store(valAddr(leaf, n), val, "leaf value in put")
	th.Store(keyAddr(leaf, n), key, "leaf key in put")
	th.Persist(valAddr(leaf, n), memmodel.WordSize, "persist leaf value")
	th.Persist(keyAddr(leaf, n), memmodel.WordSize, "persist leaf key")
	th.Store(leaf+leafPermOff, perm+1, "permutation publish in put")
	th.Persist(leaf+leafPermOff, memmodel.WordSize, "persist permutation")
	return true
}

// get reads through the permutation word, touching only published slots.
func (m *masstree) get(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	leaf := memmodel.Addr(th.Load(pmem.RootAddr, "read root in get"))
	if leaf == 0 {
		return 0, false
	}
	n := int(th.Load(leaf+leafPermOff, "read permutation in get"))
	if n > leafFanout {
		return 0, false
	}
	for i := 0; i < n; i++ {
		if th.Load(keyAddr(leaf, i), "read leaf key in get") == key {
			return th.Load(valAddr(leaf, i), "read leaf value in get"), true
		}
	}
	return 0, false
}

// recover re-opens the tree and validates the published slots.
func (m *masstree) recover(th *pmem.Thread) {
	th.Load(markerAddr, "read driver marker in Recovery")
	leaf := memmodel.Addr(th.Load(pmem.RootAddr, "read root in Recovery"))
	if leaf == 0 {
		return
	}
	n := int(th.Load(leaf+leafPermOff, "read permutation in Recovery"))
	if n > leafFanout {
		n = leafFanout
	}
	for i := 0; i < n; i++ {
		th.Load(valAddr(leaf, i), "read leaf value in Recovery")
		th.Load(keyAddr(leaf, i), "read leaf key in Recovery")
	}
	for k := memmodel.Value(1); k <= 5; k++ {
		m.get(th, k)
	}
}

// Build constructs the exploration program for a variant (both variants
// are identical: the port has no seeded bugs).
func Build(v bench.Variant) explore.Program {
	m := &masstree{v: v}
	return &explore.FuncProgram{
		ProgName: "P-Masstree-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				m.create(th)
				for k := memmodel.Value(1); k <= 5; k++ {
					m.put(th, k, k*10)
				}
				th.Store(markerAddr, 5, "driver marker")
				th.Persist(markerAddr, memmodel.WordSize, "persist driver marker")
			},
			func(w *pmem.World) {
				m.recover(w.Thread(0))
			},
		},
	}
}

// Benchmark describes the port for the evaluation harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name:          "P-Masstree",
		Expected:      nil, // no Table 2 rows: the discipline is sound
		Build:         Build,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}

// Leaf chaining and splits: P-Masstree leaves form a sorted linked
// list; a full leaf splits by persisting the new right leaf completely
// before the next-pointer publish (the commit store), then shrinking
// the old permutation word — each step durable before the next, so the
// structure stays robust (the negative control keeps holding with
// splits in play).

const (
	leafNextOff   = 8
	leafLowKeyOff = 16
	maxLeaves     = 16
)

// leafOf walks the chain to the leaf owning key.
func (m *masstree) leafOf(th *pmem.Thread, key memmodel.Value) memmodel.Addr {
	leaf := memmodel.Addr(th.Load(pmem.RootAddr, "read root in leafOf"))
	for hops := 0; leaf != 0 && hops < maxLeaves; hops++ {
		next := memmodel.Addr(th.Load(leaf+leafNextOff, "read leaf next in leafOf"))
		if next == 0 {
			return leaf
		}
		if th.Load(next+leafLowKeyOff, "read low key in leafOf") > key {
			return leaf
		}
		leaf = next
	}
	return leaf
}

// splitLeaf moves the upper half of a full leaf to a new right leaf.
func (m *masstree) splitLeaf(th *pmem.Thread, leaf memmodel.Addr) {
	w := th.World()
	right := w.Heap.AllocLines(3)
	n := int(th.Load(leaf+leafPermOff, "read permutation in split"))
	if n > leafFanout {
		n = leafFanout
	}
	half := n / 2
	moved := 0
	var low memmodel.Value
	for i := half; i < n; i++ {
		k := th.Load(keyAddr(leaf, i), "read key in split")
		v := th.Load(valAddr(leaf, i), "read value in split")
		if moved == 0 {
			low = k
		}
		th.Store(valAddr(right, moved), v, "leaf value in split")
		th.Store(keyAddr(right, moved), k, "leaf key in split")
		th.Persist(valAddr(right, moved), memmodel.WordSize, "persist split value")
		th.Persist(keyAddr(right, moved), memmodel.WordSize, "persist split key")
		moved++
	}
	th.Store(right+leafLowKeyOff, low, "low key in split")
	th.Store(right+leafPermOff, memmodel.Value(moved), "permutation in split (new leaf)")
	oldNext := th.Load(leaf+leafNextOff, "read next in split")
	th.Store(right+leafNextOff, oldNext, "leaf next chain in split")
	th.Persist(right+leafPermOff, 3*memmodel.WordSize, "persist new leaf header")
	// Commit store: publish the new leaf, then shrink the old one.
	th.Store(leaf+leafNextOff, memmodel.Value(right), "leaf next publish in split")
	th.Persist(leaf+leafNextOff, memmodel.WordSize, "persist leaf next publish")
	th.Store(leaf+leafPermOff, memmodel.Value(half), "permutation shrink in split")
	th.Persist(leaf+leafPermOff, memmodel.WordSize, "persist permutation shrink")
}

// PutChained inserts through the leaf chain, splitting full leaves.
// The driver inserts ascending keys, so in-leaf order is maintained.
func (m *masstree) PutChained(th *pmem.Thread, key, val memmodel.Value) bool {
	leaf := m.leafOf(th, key)
	if leaf == 0 {
		return false
	}
	n := int(th.Load(leaf+leafPermOff, "read permutation in put"))
	if n >= leafFanout {
		m.splitLeaf(th, leaf)
		leaf = m.leafOf(th, key)
		n = int(th.Load(leaf+leafPermOff, "read permutation in put"))
		if n >= leafFanout {
			return false
		}
	}
	th.Store(valAddr(leaf, n), val, "leaf value in put")
	th.Store(keyAddr(leaf, n), key, "leaf key in put")
	th.Persist(valAddr(leaf, n), memmodel.WordSize, "persist leaf value")
	th.Persist(keyAddr(leaf, n), memmodel.WordSize, "persist leaf key")
	th.Store(leaf+leafPermOff, memmodel.Value(n+1), "permutation publish in put")
	th.Persist(leaf+leafPermOff, memmodel.WordSize, "persist permutation")
	return true
}

// GetChained looks a key up through the chain.
func (m *masstree) GetChained(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	leaf := m.leafOf(th, key)
	if leaf == 0 {
		return 0, false
	}
	n := int(th.Load(leaf+leafPermOff, "read permutation in get"))
	if n > leafFanout {
		return 0, false
	}
	for i := 0; i < n; i++ {
		if th.Load(keyAddr(leaf, i), "read leaf key in get") == key {
			return th.Load(valAddr(leaf, i), "read leaf value in get"), true
		}
	}
	return 0, false
}

// BuildChained is the exploration program with splits in play: still a
// negative control — the chained discipline is robust.
func BuildChained(v bench.Variant) explore.Program {
	m := &masstree{v: v}
	return &explore.FuncProgram{
		ProgName: "P-Masstree-chained-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				m.create(th)
				for k := memmodel.Value(1); k <= 12; k++ {
					m.PutChained(th, k, k*10)
				}
				th.Store(markerAddr, 12, "driver marker")
				th.Persist(markerAddr, memmodel.WordSize, "persist driver marker")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(markerAddr, "read driver marker in Recovery")
				for k := memmodel.Value(1); k <= 12; k++ {
					m.GetChained(th, k)
				}
			},
		},
	}
}
