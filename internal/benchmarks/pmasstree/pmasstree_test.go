package pmasstree

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

func TestFunctionalPutGet(t *testing.T) {
	m := &masstree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	m.create(th)
	for k := memmodel.Value(1); k <= 5; k++ {
		if !m.put(th, k, k*10) {
			t.Fatalf("put(%d) failed", k)
		}
	}
	for k := memmodel.Value(1); k <= 5; k++ {
		v, ok := m.get(th, k)
		if !ok || v != k*10 {
			t.Fatalf("get(%d) = (%d, %v)", k, v, ok)
		}
	}
}

func TestLeafFull(t *testing.T) {
	m := &masstree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	m.create(th)
	for i := 0; i < leafFanout; i++ {
		if !m.put(th, memmodel.Value(i+1), 1) {
			t.Fatalf("put %d failed early", i)
		}
	}
	if m.put(th, 100, 1) {
		t.Fatal("put into a full leaf should fail")
	}
}

// P-Masstree's discipline is sound: the port must be violation-free
// under exploration — the negative control for the detection pipeline.
func TestNoViolationsRandom(t *testing.T) {
	res := explore.Run(Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: 400, Seed: 6,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("sound port flagged: %v", res.ViolationKeys())
	}
	if res.Aborted != 0 {
		t.Fatalf("%d aborted executions", res.Aborted)
	}
}

func TestNoViolationsModelCheck(t *testing.T) {
	res := explore.Run(Build(bench.Buggy), explore.Options{
		Mode: explore.ModelCheck, Executions: 3000,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("sound port flagged under model checking: %v", res.ViolationKeys())
	}
}

// Chained leaves: twelve inserts split the root leaf and every key
// stays findable through the chain.
func TestChainedSplitAndLookup(t *testing.T) {
	m := &masstree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	m.create(th)
	for k := memmodel.Value(1); k <= 12; k++ {
		if !m.PutChained(th, k, k*10) {
			t.Fatalf("PutChained(%d) failed", k)
		}
	}
	// The chain must have at least two leaves.
	first := memmodel.Addr(th.Load(pmem.RootAddr, "root"))
	if next := th.Load(first+leafNextOff, "next"); next == 0 {
		t.Fatal("no split happened after 12 inserts into an 8-slot leaf")
	}
	for k := memmodel.Value(1); k <= 12; k++ {
		v, ok := m.GetChained(th, k)
		if !ok || v != k*10 {
			t.Fatalf("GetChained(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := m.GetChained(th, 99); ok {
		t.Fatal("GetChained(99) should miss")
	}
}

// The chained variant with splits remains violation-free: the split's
// persist-before-publish discipline is robust.
func TestChainedNoViolations(t *testing.T) {
	res := explore.Run(BuildChained(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: 400, Seed: 51,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("chained masstree flagged: %v", res.ViolationKeys())
	}
	if res.Aborted != 0 {
		t.Fatalf("%d aborted executions", res.Aborted)
	}
}

// And the split image is durable: crash after the workload, everything
// readable.
func TestChainedDurableAcrossCrash(t *testing.T) {
	m := &masstree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	m.create(th)
	for k := memmodel.Value(1); k <= 12; k++ {
		m.PutChained(th, k, k*10)
	}
	w.Crash()
	for k := memmodel.Value(1); k <= 12; k++ {
		v, ok := m.GetChained(th, k)
		if !ok || v != k*10 {
			t.Fatalf("post-crash GetChained(%d) = (%d, %v)", k, v, ok)
		}
	}
}
