package redislog

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

func TestSetGet(t *testing.T) {
	r := New(bench.Fixed)
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	r.Init(th, 16)
	for k := memmodel.Value(1); k <= 8; k++ {
		r.Set(th, k, k*101, 3)
	}
	r.Set(th, 5, 999, 1) // overwrite
	for k := memmodel.Value(1); k <= 8; k++ {
		want := k * 101
		if k == 5 {
			want = 999
		}
		v, ok := r.Get(th, k)
		if !ok || v != want {
			t.Fatalf("get(%d) = (%d, %v), want %d", k, v, ok, want)
		}
	}
	if _, ok := r.Get(th, 12); ok {
		t.Fatal("get(12) should miss")
	}
}

func TestBuggyReportsAOFBug(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 41,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

func TestFixedIsClean(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 41,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant reports: %v", res.ViolationKeys())
	}
	if res.Aborted != 0 {
		t.Fatalf("%d aborted executions", res.Aborted)
	}
}

// TestWindowedRunMatches: the same workload explored with a bounded
// window reports the same violations as the unbounded run.
func TestWindowedRunMatches(t *testing.T) {
	b := Benchmark()
	base := explore.Options{Mode: explore.Random, Executions: 50, Seed: 42}
	unb := explore.Run(b.Build(bench.Buggy), base)
	win := base
	win.Model.Window = 64
	bounded := explore.Run(b.Build(bench.Buggy), win)
	got, want := bounded.ViolationKeys(), unb.ViolationKeys()
	if len(got) != len(want) {
		t.Fatalf("windowed keys %v != unbounded %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("windowed keys %v != unbounded %v", got, want)
		}
	}
	if bounded.Retirements == 0 {
		t.Fatal("bounded run never retired")
	}
}
