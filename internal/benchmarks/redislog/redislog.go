// Package redislog ports the persistence skeleton of a Redis-style
// server whose state is an append-only log (the AOF) plus a dictionary
// of newest-entry pointers, persisted through the low-level
// (libpmem-style) direct API. Unlike the transactional Redis port in
// internal/benchmarks/kvstore, this port is built to be *driven*: it
// implements workload.Server, every SET persists as it goes (so the
// retirement frontier advances continuously), and the dictionary is a
// direct-indexed table, keeping every request O(1) so one execution can
// stream millions of operations — the regime the bounded-window trace
// pipeline exists for.
//
// The seeded bug is the classic AOF ordering violation: the buggy
// variant publishes a log entry (the CAS on the log head) without
// flushing the entry's payload first, so a crash can expose a reachable
// entry with torn or missing value words.
package redislog

import (
	"fmt"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/workload"
)

// Server root line: log head pointer, entry seq counter, dict table
// base, driver marker.
const (
	hdrHeadAddr   = pmem.RootAddr
	hdrSeqAddr    = pmem.RootAddr + memmodel.WordSize
	hdrTableAddr  = pmem.RootAddr + 2*memmodel.WordSize
	hdrMarkerAddr = pmem.RootAddr + 3*memmodel.WordSize
)

// Log-entry layout: header words on the first line, value words packed
// behind them (overflowing onto subsequent lines for large classes).
const (
	leKeyOff    = 0
	leSeqOff    = 8
	leNextOff   = 16
	leNWordsOff = 24
	leValOff    = 32
)

// entryLines returns the cache lines an entry with nwords value words
// occupies: the header line holds the first headWords values.
func entryLines(nwords int) int {
	const headWords = (memmodel.CacheLineSize - leValOff) / memmodel.WordSize
	if nwords <= headWords {
		return 1
	}
	return 1 + (nwords-headWords+memmodel.WordsPerLine-1)/memmodel.WordsPerLine
}

// Redis is the append-log server instance.
type Redis struct {
	v bench.Variant
}

// New builds a server instance for a variant.
func New(v bench.Variant) *Redis { return &Redis{v: v} }

// Init creates the persistent root: the dictionary table for keys
// 1..keys and the zeroed log header.
func (r *Redis) Init(th *pmem.Thread, keys int) {
	w := th.World()
	table := w.Heap.AllocLines((keys*memmodel.WordSize + memmodel.CacheLineSize - 1) / memmodel.CacheLineSize)
	th.Store(hdrTableAddr, memmodel.Value(table), "dict table base in server_init")
	th.Persist(hdrHeadAddr, 4*memmodel.WordSize, "persist server root in server_init")
}

func (r *Redis) table(th *pmem.Thread) memmodel.Addr {
	return memmodel.Addr(th.Load(hdrTableAddr, "read dict table base"))
}

func (r *Redis) slot(table memmodel.Addr, key memmodel.Value) memmodel.Addr {
	return table + memmodel.Addr(key-1)*memmodel.WordSize
}

// Set appends a log entry carrying words value words and publishes it:
// first on the log head (the durability point), then in the dictionary.
// The buggy variant publishes without persisting the entry first.
func (r *Redis) Set(th *pmem.Thread, key, val memmodel.Value, words int) {
	if words <= 0 {
		words = 1
	}
	w := th.World()
	seq := th.FAA(hdrSeqAddr, 1, "aof seq counter in appendEntry") + 1
	e := w.Heap.AllocLines(entryLines(words))
	th.Store(e+leKeyOff, key, "aof entry key in appendEntry")
	th.Store(e+leSeqOff, seq, "aof entry seq in appendEntry")
	th.Store(e+leNWordsOff, memmodel.Value(words), "aof entry nwords in appendEntry")
	for j := 0; j < words; j++ {
		th.Store(e+leValOff+memmodel.Addr(j)*memmodel.WordSize, val+memmodel.Value(j), "aof entry value in appendEntry") // seeded bug (buggy: published unflushed)
	}
	for {
		head := th.Load(hdrHeadAddr, "read log head in appendEntry")
		th.Store(e+leNextOff, head, "aof entry next in appendEntry")
		if r.v == bench.Fixed {
			// Entry complete and durable before it becomes reachable.
			th.Persist(e, entryLines(words)*memmodel.CacheLineSize, "persist aof entry before publish")
		}
		if _, ok := th.CAS(hdrHeadAddr, head, memmodel.Value(e), "log head publish in appendEntry"); ok {
			break
		}
	}
	th.Persist(hdrHeadAddr, memmodel.WordSize, "persist log head")
	slot := r.slot(r.table(th), key)
	th.Store(slot, memmodel.Value(e), "dict slot publish in appendEntry")
	th.Persist(slot, memmodel.WordSize, "persist dict slot")
}

// Get reads the newest entry for key through the dictionary.
func (r *Redis) Get(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	e := memmodel.Addr(th.Load(r.slot(r.table(th), key), "read dict slot in get"))
	if e == 0 {
		return 0, false
	}
	if th.Load(e+leKeyOff, "read aof entry key in get") != key {
		return 0, false
	}
	return th.Load(e+leValOff, "read aof entry value in get"), true
}

// Recover replays the log the way a Redis restart replays the AOF:
// walk from the head, validating that every reachable entry is
// complete. A reachable entry with a zero key or a torn value is
// exactly what the seeded bug exposes after a crash.
func (r *Redis) Recover(th *pmem.Thread) {
	th.Load(hdrMarkerAddr, "read driver marker in Recover")
	seen := 0
	for e := memmodel.Addr(th.Load(hdrHeadAddr, "read log head in Recover")); e != 0; {
		key := th.Load(e+leKeyOff, "read aof entry key in Recover")
		seq := th.Load(e+leSeqOff, "read aof entry seq in Recover")
		nwords := int(th.Load(e+leNWordsOff, "read aof entry nwords in Recover"))
		if key == 0 || seq == 0 {
			th.World().RecordAssertFailure(fmt.Sprintf("redislog: reachable entry %#x with empty header (key=%d seq=%d)", uint64(e), uint64(key), uint64(seq)))
		}
		for j := 0; j < nwords; j++ {
			if th.Load(e+leValOff+memmodel.Addr(j)*memmodel.WordSize, "read aof entry value in Recover") == 0 {
				th.World().RecordAssertFailure(fmt.Sprintf("redislog: torn value word %d in entry %#x", j, uint64(e)))
				break
			}
		}
		seen++
		e = memmodel.Addr(th.Load(e+leNextOff, "read aof entry next in Recover"))
	}
	if table := r.table(th); table != 0 {
		// Spot-check the dictionary agrees with the log for a few keys.
		for k := memmodel.Value(1); k <= 4; k++ {
			r.Get(th, k)
		}
	}
	_ = seen
}

// BuildWorkload constructs the exploration program: initialize the
// server, drive the configured request stream, crash, recover.
func BuildWorkload(v bench.Variant, wcfg workload.Config) explore.Program {
	r := New(v)
	return &explore.FuncProgram{
		ProgName: "RedisLog-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				cfg := wcfg
				if cfg.Keys <= 0 {
					cfg.Keys = 64
				}
				r.Init(w.Thread(0), cfg.Keys)
				workload.Drive(w, cfg, r)
				th := w.Thread(0)
				th.Store(hdrMarkerAddr, 1, "driver marker")
				th.Persist(hdrMarkerAddr, memmodel.WordSize, "persist driver marker")
			},
			func(w *pmem.World) {
				r.Recover(w.Thread(0))
			},
		},
	}
}

// DefaultConfig is the small registry-sized workload; psan-bench
// overrides it for the long-trace runs.
func DefaultConfig() workload.Config {
	return workload.Config{
		Ops:     64,
		Keys:    16,
		ZipfS:   1.2,
		ReadPct: 30,
		Threads: 2,
		Classes: []workload.SizeClass{{Words: 1, Weight: 3}, {Words: 8, Weight: 1}},
	}
}

// Benchmark describes the port for the harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "RedisLog",
		Expected: []bench.ExpectedBug{
			{Field: "aof entry", Cause: "publishing a log entry on the AOF head without flushing its value first", LocSubstr: "aof entry value in appendEntry"},
		},
		Build:         func(v bench.Variant) explore.Program { return BuildWorkload(v, DefaultConfig()) },
		PreferredMode: explore.Random,
		Executions:    400,
	}
}
