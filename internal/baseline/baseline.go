// Package baseline reimplements the ordering-bug detection approaches of
// the tools PSan is compared against (Table 1 and §6.4):
//
//   - AssertOracle — the Jaaru/Yat approach: a bug exists only when the
//     program crashes or an assertion fails; localization is manual.
//   - Witcher — a dependence-heuristic checker in the spirit of Witcher:
//     it infers likely persistence-ordering constraints from data and
//     control dependence between post-crash reads and flags crash states
//     that break them. It has no notion of equivalence to strict
//     persistency, so it misses violations whose evidence does not
//     arrive as a fresh-read-then-stale-read dependence chain (the
//     paper's Figure 7 shape among them).
//   - Pmemcheck — the pmemcheck/Agamotto approach: report stores that
//     were not flushed by the time of the crash, with no ordering check
//     at all; noisy on intentionally-unflushed data.
//
// All three run on the same recorded traces as PSan, which is what makes
// the comparison apples-to-apples: robustness subsumes each of these
// conditions (§1.1).
package baseline

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/trace"
)

// AssertOracle reports the assertion failures of an execution — the only
// bug signal the Jaaru-style baseline has.
func AssertOracle(w *pmem.World) []string { return w.AssertFailures() }

// Finding is one ordering violation reported by the Witcher-style
// heuristic: Later was observed persisted by an earlier read, while a
// subsequent dependent read observed memory older than Earlier, which
// happens before Later.
type Finding struct {
	Earlier *trace.Store // the store that should have persisted first
	Later   *trace.Store // the store observed persisted
	// EarlierLoc and LaterLoc are the stores' source labels, materialized
	// at detection time so findings stay meaningful after the trace's
	// storage is recycled for the next execution.
	EarlierLoc string
	LaterLoc   string
	LoadLoc    string // the dependent load that observed stale data
}

// Key identifies the finding for deduplication.
func (f Finding) Key() string {
	return fmt.Sprintf("%s|%s", f.EarlierLoc, f.LaterLoc)
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("witcher: %v persisted before %v (stale read at %s)", f.Later, f.Earlier, f.LoadLoc)
}

// Witcher analyzes a completed trace with the dependence heuristic. For
// each post-crash thread it scans reads in program order; a read that
// observes a store B from the immediately preceding sub-execution makes
// every later read of that thread dependence-ordered after it. If a
// later read observes a version of some location a older than a store A
// to a that happens before B, the pair (A, B) is flagged.
func Witcher(tr *trace.Trace) []Finding {
	var out []Finding
	seen := map[string]bool{}
	subs := tr.SubExecs()
	for ei := 1; ei < len(subs); ei++ {
		// Group this sub-execution's cross-crash reads per thread, in
		// program order.
		perThread := map[memmodel.ThreadID][]*trace.Event{}
		for _, ev := range tr.SubEvents(ei) {
			if ev.Kind != memmodel.OpLoad && !ev.Kind.IsRMW() {
				continue
			}
			if ev.RF == nil {
				continue
			}
			if ev.RF.Initial || ev.RF.SubExec < ei {
				perThread[ev.Thread] = append(perThread[ev.Thread], ev)
			}
		}
		prev := subs[ei-1]
		for _, reads := range perThread {
			for i, fresh := range reads {
				b := fresh.RF
				// The anchor read must observe a store from the
				// immediately preceding sub-execution; the heuristic
				// does not reason across multiple crashes.
				if b.Initial || b.SubExec != ei-1 {
					continue
				}
				for _, stale := range reads[i+1:] {
					a := newestHBStoreTo(prev, stale.Addr, b)
					if a == nil || a == b {
						continue
					}
					older := stale.RF.Initial ||
						(stale.RF.SubExec == ei-1 && stale.RF.Seq < a.Seq) ||
						stale.RF.SubExec < ei-1
					if !older {
						continue
					}
					f := Finding{
						Earlier: a, Later: b,
						EarlierLoc: tr.LocString(a.Loc),
						LaterLoc:   tr.LocString(b.Loc),
						LoadLoc:    tr.LocString(stale.Loc),
					}
					if !seen[f.Key()] {
						seen[f.Key()] = true
						out = append(out, f)
					}
				}
			}
		}
	}
	return out
}

// newestHBStoreTo returns the newest store to addr in sub-execution e
// that happens before b (or is b's own earlier same-thread store).
func newestHBStoreTo(e *trace.SubExec, addr memmodel.Addr, b *trace.Store) *trace.Store {
	var newest *trace.Store
	for _, s := range e.StoresTo(addr) {
		if s.HappensBefore(b) {
			newest = s // StoresTo is in TSO order; keep the last match
		}
	}
	return newest
}

// Unflushed is one pmemcheck-style report: a store that was committed in
// a pre-crash sub-execution but not guaranteed persistent when the crash
// hit.
type Unflushed struct {
	Store *trace.Store
	// Loc is the store's source label, materialized at detection time.
	Loc string
}

// String renders the report.
func (u Unflushed) String() string {
	return fmt.Sprintf("pmemcheck: store not flushed at crash: %v", u.Store)
}

// Pmemcheck scans each crashed sub-execution for stores that no
// completed flush covered — the "are stores flushed at all" check of
// pmemcheck and Agamotto (Table 1: "does not check order"). The scan
// mirrors the Px86 flush semantics: clflush persists its line when it
// commits; clflushopt needs a later drain by the same thread.
//
// The scanner assumes the immediate-commit simulator configuration, in
// which the event log order coincides with TSO commit order.
func Pmemcheck(tr *trace.Trace) []Unflushed {
	var out []Unflushed
	subs := tr.SubExecs()
	for ei := 0; ei < len(subs)-1; ei++ { // every crashed sub-execution
		lineStores := map[memmodel.Addr][]*trace.Store{}
		guaranteed := map[memmodel.Addr]int{}
		pending := map[memmodel.ThreadID]map[memmodel.Addr]int{}
		for _, ev := range tr.SubEvents(ei) {
			switch {
			case ev.Store != nil:
				line := ev.Store.Addr.Line()
				lineStores[line] = append(lineStores[line], ev.Store)
				if ev.Kind.IsRMW() {
					completeDrain(pending, guaranteed, ev.Thread)
				}
			case ev.Kind == memmodel.OpFlush:
				line := ev.Addr.Line()
				if n := len(lineStores[line]); n > guaranteed[line] {
					guaranteed[line] = n
				}
			case ev.Kind == memmodel.OpFlushOpt:
				line := ev.Addr.Line()
				if pending[ev.Thread] == nil {
					pending[ev.Thread] = map[memmodel.Addr]int{}
				}
				if n := len(lineStores[line]); n > pending[ev.Thread][line] {
					pending[ev.Thread][line] = n
				}
			case ev.Kind == memmodel.OpSFence || ev.Kind == memmodel.OpMFence:
				completeDrain(pending, guaranteed, ev.Thread)
			case ev.Kind.IsRMW():
				completeDrain(pending, guaranteed, ev.Thread)
			}
		}
		for line, stores := range lineStores {
			for i := guaranteed[line]; i < len(stores); i++ {
				out = append(out, Unflushed{Store: stores[i], Loc: tr.LocString(stores[i].Loc)})
			}
		}
	}
	return out
}

func completeDrain(pending map[memmodel.ThreadID]map[memmodel.Addr]int, guaranteed map[memmodel.Addr]int, t memmodel.ThreadID) {
	for line, n := range pending[t] {
		if n > guaranteed[line] {
			guaranteed[line] = n
		}
	}
	delete(pending, t)
}
