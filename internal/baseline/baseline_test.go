package baseline

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	addrX = memmodel.Addr(0x2000)
	addrY = memmodel.Addr(0x3000)
)

// readValue picks the candidate with the given value (or the initial
// store) and performs the load.
func readValue(t *testing.T, w *pmem.World, th memmodel.ThreadID, a memmodel.Addr, want memmodel.Value, initial bool, loc string) {
	t.Helper()
	for _, c := range w.M.LoadCandidates(th, a) {
		if c.Store.Initial == initial && (initial || c.Store.Value == want) {
			lid := w.M.Intern(loc)
			w.M.Load(th, a, c, lid)
			w.Checker.ObserveRead(th, a, c.Store, lid)
			return
		}
	}
	t.Fatalf("no candidate %d (initial=%v) at %s", want, initial, a)
}

// Figure 1 with the missing data flush: the commit store persisted but
// the data did not — Witcher's dependence heuristic catches this shape
// (fresh read guards a stale read).
func TestWitcherFindsCommitStoreBug(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrY, 42, "tmp->data=42") // missing flush
	th.Store(addrX, 1, "ptr->child=tmp")
	th.Flush(addrX, "clflush child")
	w.Crash()
	readValue(t, w, 0, addrX, 1, false, "read child")
	readValue(t, w, 0, addrY, 0, true, "read data")
	fs := Witcher(w.M.Trace())
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want 1", fs)
	}
	if fs[0].EarlierLoc != "tmp->data=42" || fs[0].LaterLoc != "ptr->child=tmp" {
		t.Fatalf("finding = %v", fs[0])
	}
}

// The Figure 7 shape: the stale read comes BEFORE the fresh read in the
// post-crash program, so there is no dependence chain — the heuristic
// misses the bug that PSan reports (§6.4: PSan reported 31 bugs Witcher
// could not find).
func TestWitcherMissesFigure7Shape(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	t0, t1 := w.Thread(0), w.Thread(1)
	t0.Store(addrX, 1, "x=1")
	// Thread 1 observes x and publishes y with a flush.
	r1 := t1.Load(addrX, "r1=x")
	t1.Store(addrY, r1, "y=r1")
	t1.Flush(addrY, "flush y")
	w.Crash()
	// Post-crash: stale read first, fresh read second.
	readValue(t, w, 0, addrX, 0, true, "r2=x")
	readValue(t, w, 0, addrY, 1, false, "r3=y")
	if fs := Witcher(w.M.Trace()); len(fs) != 0 {
		t.Fatalf("heuristic unexpectedly found: %v", fs)
	}
	// PSan does find it.
	if len(w.Checker.Violations()) != 1 {
		t.Fatalf("PSan violations = %d, want 1", len(w.Checker.Violations()))
	}
}

// A robust execution (Figure 6): no findings from the heuristic.
func TestWitcherNoFalsePositiveOnRobust(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	t0, t1 := w.Thread(0), w.Thread(1)
	t0.Store(addrX, 1, "x=1")
	t1.Store(addrY, 1, "y=1")
	t1.Flush(addrY, "flush y")
	w.Crash()
	readValue(t, w, 0, addrY, 1, false, "r2=y")
	readValue(t, w, 0, addrX, 0, true, "r1=x")
	if fs := Witcher(w.M.Trace()); len(fs) != 0 {
		t.Fatalf("false positive on robust execution: %v", fs)
	}
}

func TestWitcherDedup(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrY, 42, "data")
	th.Store(addrX, 1, "commit")
	th.Flush(addrX, "flush commit")
	w.Crash()
	readValue(t, w, 0, addrX, 1, false, "read commit")
	readValue(t, w, 0, addrY, 0, true, "read data")
	readValue(t, w, 0, addrY, 0, true, "read data again")
	if fs := Witcher(w.M.Trace()); len(fs) != 1 {
		t.Fatalf("findings = %v, want 1 (deduplicated)", fs)
	}
}

func TestPmemcheckReportsUnflushedStores(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrX, 1, "flushed store")
	th.Flush(addrX, "clflush")
	th.Store(addrY, 2, "unflushed store")
	w.Crash()
	us := Pmemcheck(w.M.Trace())
	if len(us) != 1 {
		t.Fatalf("reports = %v, want 1", us)
	}
	if us[0].Loc != "unflushed store" {
		t.Fatalf("report = %v", us[0])
	}
}

func TestPmemcheckFlushOptNeedsDrain(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrX, 1, "a")
	th.FlushOpt(addrX, "flushopt a") // no drain: not guaranteed
	th.Store(addrY, 2, "b")
	th.FlushOpt(addrY, "flushopt b")
	th.SFence("sfence") // drains only what precedes it — both here
	w.Crash()
	if us := Pmemcheck(w.M.Trace()); len(us) != 0 {
		t.Fatalf("reports = %v, want none (flushopt+sfence)", us)
	}

	w2 := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th2 := w2.Thread(0)
	th2.Store(addrX, 1, "a")
	th2.FlushOpt(addrX, "flushopt a")
	// crash with no drain
	w2.Crash()
	if us := Pmemcheck(w2.M.Trace()); len(us) != 1 {
		t.Fatalf("reports = %v, want 1 (flushopt without drain)", us)
	}
}

// Pmemcheck is noisy: it flags stores the program never needs durable —
// the false-positive class PSan's robustness condition avoids (§1.1:
// "some persistent memory locations are used as temporary storage").
func TestPmemcheckFlagsHarmlessTemporaries(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrX, 7, "scratch never read after crash")
	w.Crash()
	// Post-crash code never reads addrX.
	if us := Pmemcheck(w.M.Trace()); len(us) != 1 {
		t.Fatalf("reports = %v, want the noisy temporary", us)
	}
	if n := len(w.Checker.Violations()); n != 0 {
		t.Fatalf("PSan violations = %d, want 0 (robust execution)", n)
	}
}

func TestAssertOracle(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	if got := AssertOracle(w); len(got) != 0 {
		t.Fatalf("failures = %v, want none", got)
	}
	w.RecordAssertFailure("assert(r==1) @3:5")
	if got := AssertOracle(w); len(got) != 1 || got[0] != "assert(r==1) @3:5" {
		t.Fatalf("failures = %v", got)
	}
}

// RMW operations count as drains for flushopt completion.
func TestPmemcheckRMWCompletesFlushOpt(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrX, 1, "a")
	th.FlushOpt(addrX, "flushopt a")
	th.FAA(addrY, 1, "faa drain") // locked RMW drains
	th.Flush(addrY, "flush y")    // cover the faa's own store
	w.Crash()
	if us := Pmemcheck(w.M.Trace()); len(us) != 0 {
		t.Fatalf("reports = %v, want none", us)
	}
}
