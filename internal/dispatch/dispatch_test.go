package dispatch

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/pmem"
)

// TestMain doubles as the worker binary: the supervisor tests re-exec
// this test binary with PSAN_WORKER_PROCESS=1, which routes straight
// into WorkerMain with a name-based resolver over the test programs —
// the spawned process IS a real psan-worker, just with in-memory
// programs instead of source files.
func TestMain(m *testing.M) {
	if os.Getenv("PSAN_WORKER_PROCESS") == "1" {
		os.Exit(WorkerMain(os.Stdin, os.Stdout, os.Stderr, resolveTestProgram))
	}
	os.Exit(m.Run())
}

func resolveTestProgram(name, path string) (explore.Program, error) {
	mk, ok := testPrograms[name]
	if !ok {
		return nil, fmt.Errorf("unknown test program %q", name)
	}
	return mk(), nil
}

const (
	addrX = memmodel.Addr(0x2000)
	addrY = memmodel.Addr(0x3000)
)

var testPrograms = map[string]func() explore.Program{
	"figure2":  figure2,
	"figure7":  figure7,
	"panicker": panicker,
}

// figure2 is the paper's Figure 2: four stores with no flushes, then
// post-crash reads. Not robust — violations at several crash points.
func figure2() explore.Program {
	return &explore.FuncProgram{
		ProgName: "figure2",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Store(addrY, 1, "y=1")
				th.Store(addrX, 2, "x=2")
				th.Store(addrY, 2, "y=2")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(addrX, "r1=x")
				th.Load(addrY, "r2=y")
			},
		},
	}
}

// figure7 is the inter-thread example: more interleavings, more crash
// points — a bigger model-check frontier than figure2.
func figure7() explore.Program {
	return &explore.FuncProgram{
		ProgName: "figure7",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				w.Spawn(0, func(th *pmem.Thread) {
					th.Store(addrX, 1, "x=1")
					th.Flush(addrX, "flush x")
				})
				w.Spawn(1, func(th *pmem.Thread) {
					r1 := th.Load(addrX, "r1=x")
					th.Store(addrY, r1, "y=r1")
					th.Flush(addrY, "flush y")
				})
				w.RunThreads()
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(addrX, "r2=x")
				th.Load(addrY, "r3=y")
			},
		},
	}
}

// panicker stores then panics in the post-crash phase when x reads
// back as 1: some executions quarantine.
func panicker() explore.Program {
	return &explore.FuncProgram{
		ProgName: "panicker",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Store(addrY, 1, "y=1")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				if th.Load(addrX, "r1=x") == 1 {
					panic("post-crash invariant")
				}
			},
		},
	}
}

// testExe is this test binary, re-execed as the worker process.
func testExe(t *testing.T) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// fastRetry keeps redelivery waits test-sized.
var fastRetry = RetryPolicy{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Retries: 3, Seed: 42}

// supOptions builds supervised-campaign options re-execing the test
// binary, with chaos injected via the worker environment (never this
// process's).
func supOptions(t *testing.T, prog string, opt explore.Options, workers int, chaos string) Options {
	t.Helper()
	opt.Workers = workers
	env := []string{"PSAN_WORKER_PROCESS=1"}
	if chaos != "" {
		env = append(env, ChaosEnv+"="+chaos)
	}
	return Options{
		Explore:   opt,
		Program:   testPrograms[prog](),
		WorkerBin: testExe(t),
		WorkerEnv: env,
		Lease:     5 * time.Second,
		Retry:     fastRetry,
	}
}

func violationKeys(res *explore.Result) []string {
	keys := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		keys = append(keys, v.Key())
	}
	return keys
}

// sameResult asserts the supervised result is bit-identical to the
// baseline on every determinism-contract field.
func sameResult(t *testing.T, got, want *explore.Result) {
	t.Helper()
	if got.Executions != want.Executions {
		t.Errorf("Executions = %d, want %d", got.Executions, want.Executions)
	}
	if got.Aborted != want.Aborted {
		t.Errorf("Aborted = %d, want %d", got.Aborted, want.Aborted)
	}
	if got.Quarantined != want.Quarantined {
		t.Errorf("Quarantined = %d, want %d", got.Quarantined, want.Quarantined)
	}
	if got.Partial != want.Partial {
		t.Errorf("Partial = %v, want %v", got.Partial, want.Partial)
	}
	if got.StopReason != want.StopReason {
		t.Errorf("StopReason = %q, want %q", got.StopReason, want.StopReason)
	}
	if got.FrontierRemaining != want.FrontierRemaining {
		t.Errorf("FrontierRemaining = %d, want %d", got.FrontierRemaining, want.FrontierRemaining)
	}
	if got.CacheHits != want.CacheHits || got.CacheMisses != want.CacheMisses {
		t.Errorf("cache = %d/%d, want %d/%d", got.CacheHits, got.CacheMisses, want.CacheHits, want.CacheMisses)
	}
	if got.DPORPruned != want.DPORPruned {
		t.Errorf("DPORPruned = %d, want %d", got.DPORPruned, want.DPORPruned)
	}
	if got.ExecutionsToAllBugs != want.ExecutionsToAllBugs {
		t.Errorf("ExecutionsToAllBugs = %d, want %d", got.ExecutionsToAllBugs, want.ExecutionsToAllBugs)
	}
	gk, wk := violationKeys(got), violationKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("violations = %v, want %v", gk, wk)
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Errorf("violation[%d] = %s, want %s", i, gk[i], wk[i])
		}
	}
}

// TestIsolatedMatchesInProcess: no chaos — a supervised campaign over
// worker processes assembles the same Result as explore.Run, at every
// worker count, in both modes.
func TestIsolatedMatchesInProcess(t *testing.T) {
	cases := []struct {
		name string
		prog string
		opt  explore.Options
	}{
		{"random", "figure2", explore.Options{Mode: explore.Random, Executions: 300, Seed: 11}},
		{"mc", "figure7", explore.Options{Mode: explore.ModelCheck, Executions: 10000}},
		{"mc-quarantine", "panicker", explore.Options{Mode: explore.ModelCheck, Executions: 10000}},
	}
	for _, tc := range cases {
		base := explore.Run(testPrograms[tc.prog](), withWorkers(tc.opt, 1))
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/w%d", tc.name, workers), func(t *testing.T) {
				opt := supOptions(t, tc.prog, tc.opt, workers, "")
				opt.UnitExecs = 32
				res := Run(opt)
				sameResult(t, res, base)
				if !res.Isolated {
					t.Error("Isolated = false, want true")
				}
				if res.Degraded {
					t.Error("Degraded = true, want false")
				}
			})
		}
	}
}

func withWorkers(opt explore.Options, w int) explore.Options {
	opt.Workers = w
	return opt
}

// TestKillChaosDeterminism: every unit's first delivery is SIGKILLed
// mid-unit (well over three worker kills per campaign); redeliveries
// complete, and the merge is bit-identical to the uninterrupted
// in-process run at every worker count.
func TestKillChaosDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		prog  string
		opt   explore.Options
		chaos string
	}{
		{"random", "figure2", explore.Options{Mode: explore.Random, Executions: 200, Seed: 7}, "kill-after=5"},
		{"mc", "figure7", explore.Options{Mode: explore.ModelCheck, Executions: 10000}, "kill-after=1"},
	}
	for _, tc := range cases {
		base := explore.Run(testPrograms[tc.prog](), withWorkers(tc.opt, 1))
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/w%d", tc.name, workers), func(t *testing.T) {
				opt := supOptions(t, tc.prog, tc.opt, workers, tc.chaos)
				opt.UnitExecs = 25
				res := Run(opt)
				sameResult(t, res, base)
				if res.Redeliveries < 3 {
					t.Errorf("Redeliveries = %d, want >= 3 (every unit's first delivery dies)", res.Redeliveries)
				}
				// A respawn is only guaranteed when every kill lands on a
				// slot that already spawned once; with many slots a
				// redelivery may go to a slot spawning its first worker.
				if workers == 1 && res.WorkerRestarts < 1 {
					t.Errorf("WorkerRestarts = %d, want >= 1", res.WorkerRestarts)
				}
				if len(res.PoisonUnits) != 0 {
					t.Errorf("PoisonUnits = %v, want none", res.PoisonUnits)
				}
			})
		}
	}
}

// TestHungWorkerLeaseExpiry: a worker goes silent mid-unit (no exit, no
// heartbeat); the lease expires, the supervisor kills it, and the
// redelivered unit completes — same bytes as the uninterrupted run.
func TestHungWorkerLeaseExpiry(t *testing.T) {
	eopt := explore.Options{Mode: explore.Random, Executions: 60, Seed: 3}
	base := explore.Run(figure2(), withWorkers(eopt, 1))
	opt := supOptions(t, "figure2", eopt, 2, "hang=0")
	opt.UnitExecs = 20
	opt.Lease = 400 * time.Millisecond
	res := Run(opt)
	sameResult(t, res, base)
	if res.Redeliveries < 1 {
		t.Errorf("Redeliveries = %d, want >= 1 (the hung unit)", res.Redeliveries)
	}
}

// TestPoisonQuarantine: a unit that kills its worker on every attempt
// exhausts the retry budget and is quarantined; the campaign cuts at it
// with StopReason "poison", full provenance, and a resumable checkpoint
// carrying the supervision record.
func TestPoisonQuarantine(t *testing.T) {
	eopt := explore.Options{Mode: explore.Random, Executions: 60, Seed: 3}
	opt := supOptions(t, "figure2", eopt, 2, "poison=1")
	opt.UnitExecs = 20
	opt.Retry = RetryPolicy{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Retries: 1, Seed: 9}
	res := Run(opt)
	if !res.Partial {
		t.Error("Partial = false, want true (coverage lost at the poison unit)")
	}
	if res.StopReason != "poison" {
		t.Errorf("StopReason = %q, want \"poison\"", res.StopReason)
	}
	if len(res.PoisonUnits) != 1 {
		t.Fatalf("PoisonUnits = %d, want 1", len(res.PoisonUnits))
	}
	p := res.PoisonUnits[0]
	if p.ID != 1 || p.Kind != "random" || p.Lo != 20 || p.Hi != 40 {
		t.Errorf("poison provenance = %+v, want unit 1 random [20,40)", p)
	}
	if p.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (1 delivery + 1 retry)", p.Attempts)
	}
	if !strings.Contains(p.ExitStatus, "killed") {
		t.Errorf("ExitStatus = %q, want a kill signal", p.ExitStatus)
	}
	if !strings.Contains(p.StderrTail, "chaos: poisoning") {
		t.Errorf("StderrTail = %q, want the worker's last words", p.StderrTail)
	}
	if s := p.String(); !strings.Contains(s, "[poison]") || !strings.Contains(s, "after 2 attempts") {
		t.Errorf("String() = %q", s)
	}
	// Unit 0's executions were collected before the cut.
	if res.Executions != 20 {
		t.Errorf("Executions = %d, want 20 (unit 0 only)", res.Executions)
	}
	if res.Checkpoint == nil {
		t.Fatal("Checkpoint = nil, want a resumable cut")
	}
	if res.Checkpoint.Collected != 20 {
		t.Errorf("Checkpoint.Collected = %d, want 20", res.Checkpoint.Collected)
	}
	d := res.Checkpoint.Dispatch
	if d == nil {
		t.Fatal("Checkpoint.Dispatch = nil, want the supervision record")
	}
	if len(d.Poison) != 1 || d.Poison[0].Lo != 20 {
		t.Errorf("Dispatch.Poison = %+v, want the quarantined range", d.Poison)
	}
}

// TestDegradedFallback: when worker processes cannot even be spawned,
// the campaign latches degraded mode and completes in-process — same
// bytes, Degraded flagged.
func TestDegradedFallback(t *testing.T) {
	eopt := explore.Options{Mode: explore.Random, Executions: 80, Seed: 5}
	base := explore.Run(figure2(), withWorkers(eopt, 1))
	opt := supOptions(t, "figure2", eopt, 2, "")
	opt.WorkerBin = "/nonexistent/psan-worker"
	opt.UnitExecs = 20
	opt.spawnFailLimit = 2
	res := Run(opt)
	sameResult(t, res, base)
	if !res.Degraded {
		t.Error("Degraded = false, want true")
	}
	if res.Isolated {
		t.Error("Isolated = true, want false")
	}
}

// TestInProcessForced: InProcess is a deliberate choice, not a
// degradation — same bytes, Degraded unset.
func TestInProcessForced(t *testing.T) {
	eopt := explore.Options{Mode: explore.ModelCheck, Executions: 10000}
	base := explore.Run(figure2(), withWorkers(eopt, 1))
	opt := supOptions(t, "figure2", eopt, 4, "")
	opt.InProcess = true
	res := Run(opt)
	sameResult(t, res, base)
	if res.Degraded {
		t.Error("Degraded = true, want false (forced, not fallen back)")
	}
	if res.Isolated {
		t.Error("Isolated = true, want false")
	}
}

// TestSupervisorRestart: a campaign halted mid-flight checkpoints; a
// fresh supervisor resumes it, and the final result plus the union of
// violation keys equals the uninterrupted run — the campaign converges
// across supervisor restarts.
func TestSupervisorRestart(t *testing.T) {
	cases := []struct {
		name string
		prog string
		opt  explore.Options
		halt int
	}{
		{"random", "figure2", explore.Options{Mode: explore.Random, Executions: 200, Seed: 13}, 3},
		{"mc", "figure7", explore.Options{Mode: explore.ModelCheck, Executions: 10000}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := explore.Run(testPrograms[tc.prog](), withWorkers(tc.opt, 1))

			opt1 := supOptions(t, tc.prog, tc.opt, 4, "")
			opt1.UnitExecs = 20
			opt1.haltAfterUnits = tc.halt
			res1 := Run(opt1)
			if !res1.Partial {
				t.Fatal("halted run not Partial")
			}
			if res1.Checkpoint == nil {
				t.Fatal("halted run has no checkpoint")
			}

			eopt2 := tc.opt
			eopt2.Resume = res1.Checkpoint
			opt2 := supOptions(t, tc.prog, eopt2, 4, "")
			opt2.UnitExecs = 20
			res2 := Run(opt2)

			// A resumed run reports only violations NOT already in the
			// checkpoint's key set — exactly like a resumed in-process
			// run, which is the bit-identical baseline.
			base2 := explore.Run(testPrograms[tc.prog](), withWorkers(eopt2, 1))
			sameResult(t, res2, base2)
			union := map[string]bool{}
			for _, k := range violationKeys(res1) {
				union[k] = true
			}
			for _, k := range violationKeys(res2) {
				union[k] = true
			}
			want := violationKeys(base)
			if len(union) != len(want) {
				t.Fatalf("violation union = %d keys, want %d", len(union), len(want))
			}
			for _, k := range want {
				if !union[k] {
					t.Errorf("violation %s missing from the two-run union", k)
				}
			}
		})
	}
}

// TestRestartAfterKillChaos composes the two fault paths: run 1 is
// halted mid-campaign WHILE its workers are being kill-chaosed, and the
// resumed run still converges to the uninterrupted bytes.
func TestRestartAfterKillChaos(t *testing.T) {
	eopt := explore.Options{Mode: explore.Random, Executions: 160, Seed: 21}
	base := explore.Run(figure2(), withWorkers(eopt, 1))

	opt1 := supOptions(t, "figure2", eopt, 4, "kill-after=4")
	opt1.UnitExecs = 16
	opt1.haltAfterUnits = 4
	res1 := Run(opt1)
	if res1.Checkpoint == nil {
		t.Fatal("halted run has no checkpoint")
	}
	if res1.Checkpoint.Dispatch == nil {
		t.Fatal("checkpoint carries no supervision record")
	}

	eopt2 := eopt
	eopt2.Resume = res1.Checkpoint
	opt2 := supOptions(t, "figure2", eopt2, 4, "")
	opt2.UnitExecs = 16
	res2 := Run(opt2)
	base2 := explore.Run(figure2(), withWorkers(eopt2, 1))
	sameResult(t, res2, base2)
	// Union of the two runs' violations covers the uninterrupted run's.
	union := map[string]bool{}
	for _, k := range violationKeys(res1) {
		union[k] = true
	}
	for _, k := range violationKeys(res2) {
		union[k] = true
	}
	for _, k := range violationKeys(base) {
		if !union[k] {
			t.Errorf("violation %s missing from the two-run union", k)
		}
	}
	// The supervision record is cumulative across restarts.
	if res2.Redeliveries < res1.Redeliveries {
		t.Errorf("Redeliveries = %d after resume, want >= run 1's %d", res2.Redeliveries, res1.Redeliveries)
	}
}

// TestWorkerValidationRejectsSkew: a worker whose options disagree with
// the delivered cut answers with a permanent fatal naming the field —
// the unit quarantines immediately, no retry storm.
func TestWorkerValidationRejectsSkew(t *testing.T) {
	eopt := explore.Options{Mode: explore.Random, Executions: 40, Seed: 3}
	opt := supOptions(t, "figure2", eopt, 1, "")
	opt.UnitExecs = 20
	// Sabotage: the supervisor ships hello options with a different seed
	// than the cuts it delivers, so every unit fails validation.
	opt.Explore.Seed = 3
	res := runWithSkewedHello(t, opt)
	if res.StopReason != "poison" {
		t.Errorf("StopReason = %q, want \"poison\"", res.StopReason)
	}
	if len(res.PoisonUnits) != 1 {
		t.Fatalf("PoisonUnits = %d, want 1 (permanent fatal, no retries)", len(res.PoisonUnits))
	}
	p := res.PoisonUnits[0]
	if p.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (permanent failures skip the retry budget)", p.Attempts)
	}
	if !strings.Contains(p.LastError, "seed") {
		t.Errorf("LastError = %q, want the mismatched field named", p.LastError)
	}
}

// runWithSkewedHello runs a campaign whose hello message carries a
// wrong seed (test-only protocol sabotage).
func runWithSkewedHello(t *testing.T, opt Options) *explore.Result {
	t.Helper()
	s := newSupervisor(opt)
	s.hello.Opts.Seed = opt.Explore.Seed + 1000
	return s.run()
}

// TestProtoOptionsRoundTrip: the wire options rebuild the exact
// stream-defining knobs, both modes.
func TestProtoOptionsRoundTrip(t *testing.T) {
	in := explore.Options{
		Mode:        explore.ModelCheck,
		Executions:  123,
		Seed:        77,
		DisableDPOR: true,
		Provenance:  true,
		OpLimit:     9,
		StepTimeout: 250 * time.Millisecond,
	}
	out := optionsFromWire(optionsToWire(in))
	if out.Mode != in.Mode || out.Executions != in.Executions || out.Seed != in.Seed ||
		out.DisableDPOR != in.DisableDPOR || out.Provenance != in.Provenance ||
		out.OpLimit != in.OpLimit || out.StepTimeout != in.StepTimeout {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
	in.Mode = explore.Random
	if out := optionsFromWire(optionsToWire(in)); out.Mode != explore.Random {
		t.Errorf("random mode round trip = %v", out.Mode)
	}
}

// TestMetricsWired: the dispatch counters land in the campaign's
// registry under their documented names.
func TestMetricsWired(t *testing.T) {
	eopt := explore.Options{Mode: explore.Random, Executions: 100, Seed: 7}
	opt := supOptions(t, "figure2", eopt, 1, "kill-after=5")
	opt.UnitExecs = 25
	reg := obs.NewRegistry()
	opt.Explore.Obs = &obs.Observer{Metrics: reg}
	res := Run(opt)
	if res.Redeliveries < 1 {
		t.Fatalf("Redeliveries = %d, want >= 1", res.Redeliveries)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"dispatch.units_dispatched", "dispatch.units_merged",
		"dispatch.leases_granted", "dispatch.redeliveries",
		"dispatch.worker_restarts",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("metric %s = %v, want > 0 (counters: %v)", name, snap.Counters[name], sortedKeys(snap.Counters))
		}
	}
	if snap.Histograms["dispatch.unit_ns"].Count <= 0 {
		t.Error("dispatch.unit_ns histogram recorded nothing")
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
