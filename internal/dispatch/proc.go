// Worker process lifecycle: spawn, deliver-with-lease, reap.
package dispatch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"

	"repro/internal/explore"
)

// stderrTailCap bounds the retained worker stderr (the poison record
// carries the tail, like ExecError carries a stack).
const stderrTailCap = 4096

// tailBuffer keeps the last stderrTailCap bytes written to it.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if n := len(t.buf) - stderrTailCap; n > 0 {
		t.buf = append(t.buf[:0], t.buf[n:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) Tail() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// procError is a failed delivery: the worker died, went silent past its
// lease, or reported a fatal.
type procError struct {
	reason     string // "worker-exit", "lease-expired", "fatal", "protocol"
	detail     string
	exitStatus string
	stderrTail string
	permanent  bool // redelivery cannot help (validation mismatch etc.)
}

func (e *procError) Error() string {
	s := fmt.Sprintf("%s: %s", e.reason, e.detail)
	if e.exitStatus != "" {
		s += " (" + e.exitStatus + ")"
	}
	return s
}

// proc is one live worker process. Its stdout is drained by a reader
// goroutine into events; closure of events means the process is gone
// (EOF or decode failure — with SIGKILL there is no difference).
type proc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	enc    *json.Encoder
	events chan workerMsg
	stderr *tailBuffer

	// From the ready handshake: the worker's OS pid and its tracer's
	// clock origin (Unix ns), for span ingestion and rebasing.
	pid        int
	traceStart int64

	waitOnce sync.Once
	waitErr  error
}

// spawn starts a worker process and completes the hello/ready
// handshake within lease.
func spawn(bin string, args, env []string, hello helloMsg, lease time.Duration) (*proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = env
	tb := &tailBuffer{}
	cmd.Stderr = tb
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{
		cmd:    cmd,
		stdin:  stdin,
		enc:    json.NewEncoder(stdin),
		events: make(chan workerMsg, 16),
		stderr: tb,
	}
	go func() {
		dec := json.NewDecoder(bufio.NewReader(stdout))
		for {
			var m workerMsg
			if err := dec.Decode(&m); err != nil {
				close(p.events)
				return
			}
			p.events <- m
		}
	}()
	if err := p.enc.Encode(hello); err != nil {
		p.kill()
		return nil, fmt.Errorf("hello: %w", err)
	}
	select {
	case m, ok := <-p.events:
		if !ok {
			err := &procError{reason: "worker-exit", detail: "died before ready",
				exitStatus: p.exitStatus(), stderrTail: tb.Tail()}
			p.kill()
			return nil, err
		}
		if m.Type != "ready" {
			p.kill()
			return nil, fmt.Errorf("handshake: got %q (%s)", m.Type, m.Error)
		}
		p.pid = m.Pid
		p.traceStart = m.TraceStartUnixNs
	case <-time.After(lease):
		p.kill()
		return nil, errors.New("handshake: timed out")
	}
	return p, nil
}

// kill SIGKILLs the process and reaps it.
func (p *proc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.reap()
}

// reap waits for the process once and caches the exit error.
func (p *proc) reap() {
	p.waitOnce.Do(func() {
		p.stdin.Close()
		p.waitErr = p.cmd.Wait()
	})
}

// exitStatus renders the process's exit state ("signal: killed",
// "exit status 2", ...). Callers must know the process is dead (events
// closed) or have killed it.
func (p *proc) exitStatus() string {
	p.reap()
	if p.waitErr == nil {
		return "exit status 0"
	}
	return p.waitErr.Error()
}

// deliver sends one unit and runs its lease: every worker message
// (heartbeat, classification, result) renews the deadline; silence past
// the lease kills the worker. onClassify fires from this goroutine, and
// onTelemetry (also optional) fires for every heartbeat or result
// message carrying a telemetry payload, before the result is returned.
// A non-nil error is always a *procError, and after an error the proc
// is dead (deliver killed it or found it dead) — the caller discards
// it.
func (p *proc) deliver(um unitMsg, lease time.Duration, onClassify func(explore.UnitClassification), onTelemetry func(workerMsg)) (*explore.UnitResult, error) {
	if err := p.enc.Encode(um); err != nil {
		pe := &procError{reason: "worker-exit", detail: "sending unit: " + err.Error(),
			exitStatus: p.exitStatus(), stderrTail: p.stderr.Tail()}
		p.kill()
		return nil, pe
	}
	timer := time.NewTimer(lease)
	defer timer.Stop()
	for {
		select {
		case m, ok := <-p.events:
			if !ok {
				pe := &procError{reason: "worker-exit", detail: "died mid-unit",
					exitStatus: p.exitStatus(), stderrTail: p.stderr.Tail()}
				return nil, pe
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(lease)
			switch m.Type {
			case "hb":
				// Renewal, plus any piggybacked telemetry.
				if onTelemetry != nil {
					onTelemetry(m)
				}
			case "classified":
				if m.ID == um.ID && m.Class != nil && onClassify != nil {
					onClassify(*m.Class)
				}
			case "result":
				if m.ID != um.ID || m.Result == nil {
					p.kill()
					return nil, &procError{reason: "protocol",
						detail: fmt.Sprintf("result for unit %d (want %d, payload %v)", m.ID, um.ID, m.Result != nil)}
				}
				if onTelemetry != nil {
					onTelemetry(m)
				}
				return m.Result, nil
			case "fatal":
				p.kill()
				return nil, &procError{reason: "fatal", detail: m.Error, permanent: m.Permanent,
					stderrTail: p.stderr.Tail()}
			}
		case <-timer.C:
			p.kill()
			return nil, &procError{reason: "lease-expired",
				detail:     fmt.Sprintf("no heartbeat within %v", lease),
				exitStatus: p.exitStatus(), stderrTail: p.stderr.Tail()}
		}
	}
}
