// Package dispatch is the fault-tolerant campaign supervisor: it
// executes exploration work units (model-check subtrees, random-mode
// index ranges — internal/explore's RunUnit) in isolated worker OS
// processes, so a worker that panics uncontained, exhausts memory,
// hangs, or is SIGKILLed loses only the one unit it held.
//
// Each delivered unit carries a lease with a heartbeat deadline; a unit
// whose worker dies or goes silent is redelivered after an exponential
// backoff with deterministic jitter, up to a per-unit retry budget,
// after which it is quarantined as poison with full provenance (trail
// prefix, worker exit status, stderr tail). Because the supervisor's
// merge is internal/explore's ordered assembly — a pure function of the
// per-unit streams, each deterministic in its spec — the assembled
// Result is bit-identical to an in-process run's at any worker count,
// under any kill schedule, and across supervisor restarts.
package dispatch

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// RetryPolicy is the redelivery schedule for failed or expired units.
// The delay computation is pure — no clock, no global RNG — so the
// redelivery sequence of a unit is a deterministic function of the
// policy, the unit key, and the attempt number.
type RetryPolicy struct {
	// Base is the delay before the first redelivery; each further
	// redelivery doubles it. Default 100ms.
	Base time.Duration
	// Cap bounds the exponential growth. Default 5s.
	Cap time.Duration
	// Retries is how many redeliveries a unit gets after its first
	// delivery fails before it is quarantined as poison (a unit is
	// attempted at most Retries+1 times). 0 means the default of 3;
	// negative means no redeliveries at all.
	Retries int
	// Seed derives the per-(unit, attempt) jitter.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	if p.Retries == 0 {
		p.Retries = 3
	}
	return p
}

// Delay returns the backoff before redelivery attempt `attempt` of the
// unit identified by key (attempt 1 is the first redelivery). The delay
// is Base·2^(attempt-1) capped at Cap, plus a deterministic jitter in
// (-Base/2, +Base/2] derived from (Seed, key, attempt) so simultaneous
// failures don't redeliver in lockstep.
func (p RetryPolicy) Delay(key string, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.Cap
	// Guard the shift: past 30 doublings any sane Base exceeds any sane
	// Cap anyway.
	if attempt-1 < 30 {
		if e := p.Base << uint(attempt-1); e < p.Cap {
			d = e
		}
	}
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(p.Seed))
	h.Write(b[:])
	h.Write([]byte(key))
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	span := int64(p.Base)
	jitter := time.Duration(int64(h.Sum64()%uint64(span)) - span/2)
	d += jitter
	if d < 0 {
		d = 0
	}
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// Next decides the fate of a unit whose delivery just failed: given the
// unit key, the number of delivery attempts made so far, and the
// current time, it returns when the unit may be redelivered — or
// poison=true when the retry budget is exhausted. The clock enters only
// the returned timestamp (now + Delay); the decision itself is pure, so
// tests drive Next with a fake clock and assert the exact schedule.
func (p RetryPolicy) Next(key string, attempts int, now time.Time) (redeliverAt time.Time, poison bool) {
	p = p.withDefaults()
	budget := p.Retries
	if budget < 0 {
		budget = 0
	}
	if attempts > budget {
		return time.Time{}, true
	}
	return now.Add(p.Delay(key, attempts)), false
}
