// Worker-process main loop (the body of cmd/psan-worker, and of the
// test binary's re-exec mode): speak the unit protocol on
// stdin/stdout, run each unit in-process via explore.RunUnit, report
// heartbeats, classifications, and results.
package dispatch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/explore"
	"repro/internal/obs"
)

// ChaosEnv, when set in a worker process's environment, makes the
// worker sabotage itself for the kill-chaos tests and CI job:
//
//	kill-after=N   SIGKILL self after N executions of a unit, first
//	               delivery attempts only (every unit dies once, every
//	               redelivery completes)
//	hang=ID        on unit ID's first attempt, stop heartbeating and
//	               block forever (exercises lease expiry; the
//	               supervisor must SIGKILL this worker)
//	poison=ID      SIGKILL self at the start of every attempt of unit
//	               ID (exercises retry exhaustion and quarantine)
const ChaosEnv = "PSAN_DISPATCH_CHAOS"

// chaosPlan is the parsed ChaosEnv sabotage.
type chaosPlan struct {
	killAfter int // >0: self-kill after this many execs (attempt 0)
	hangUnit  int // >=0: block forever in unit (attempt 0)
	poison    int // >=0: self-kill on every attempt of this unit
}

func parseChaos(s string) chaosPlan {
	p := chaosPlan{killAfter: 0, hangUnit: -1, poison: -1}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		switch k {
		case "kill-after":
			p.killAfter = n
		case "hang":
			p.hangUnit = n
		case "poison":
			p.poison = n
		}
	}
	return p
}

// selfKill is the chaos kill: SIGKILL, exactly what an OOM kill or an
// operator kill -9 delivers — no deferred functions, no result flush.
func selfKill() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}

// ProgramResolver maps the hello message's program reference to a
// runnable program. cmd/psan-worker compiles the source file at path;
// the test harness resolves registered in-process programs by name.
type ProgramResolver func(name, path string) (explore.Program, error)

// WorkerMain runs the worker protocol until stdin closes (supervisor
// shutdown) and returns the process exit code. It is transport-pure —
// no flag parsing, no os.Exit — so tests run it over in-memory pipes
// and cmd/psan-worker stays a three-line wrapper.
func WorkerMain(stdin io.Reader, stdout, stderr io.Writer, resolve ProgramResolver) int {
	chaos := parseChaos(os.Getenv(ChaosEnv))
	dec := json.NewDecoder(bufio.NewReader(stdin))
	enc := json.NewEncoder(stdout)

	var hello helloMsg
	if err := dec.Decode(&hello); err != nil {
		fmt.Fprintf(stderr, "psan-worker: reading hello: %v\n", err)
		return 1
	}
	prog, err := resolve(hello.ProgramName, hello.ProgramPath)
	if err != nil {
		enc.Encode(workerMsg{Type: "fatal", Error: "resolving program: " + err.Error(), Permanent: true})
		return 1
	}
	opt := optionsFromWire(hello.Opts)

	// The supervisor's attached sinks define the worker's: a matching
	// local bundle whose contents ship back as per-unit metric deltas,
	// span tails, and flight events. No sinks means a nil Observer and
	// the allocation-identical disabled path, exactly as in-process.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
		flight *obs.FlightRecorder
	)
	if hello.Telemetry.Metrics {
		reg = obs.NewRegistry()
	}
	if hello.Telemetry.Trace {
		tracer = obs.NewTracer()
		tracer.SetPid(os.Getpid())
	}
	if hello.Telemetry.Flight {
		flight = obs.NewFlightRecorder(0)
		flight.SetPid(os.Getpid())
	}
	if reg != nil || tracer != nil || flight != nil {
		opt.Obs = &obs.Observer{Metrics: reg, Tracer: tracer, Flight: flight}
	}

	// Shipping cursors: the registry snapshot as of the last shipped
	// delta, the span index past the last shipped tail, and the highest
	// shipped flight sequence number. Each ship sends only what is new
	// since the previous one, so the supervisor's accumulate-and-commit
	// per delivery attempt reconstructs exact totals.
	var shipped obs.Snapshot
	spanCursor := 0
	var flightSeq uint64
	attach := func(m *workerMsg, unitID int) {
		if reg != nil {
			cur := reg.Snapshot()
			if d := cur.Diff(shipped); !d.Empty() {
				m.Metrics = &d
			}
			shipped = cur
		}
		if tracer != nil {
			if tail := tracer.EventsSince(spanCursor); len(tail) > 0 {
				spanCursor += len(tail)
				for i := range tail {
					// Tag each span with its unit (offset by one so unit
					// 0 survives omitempty), cloning Args — the slice
					// headers are copies but Args pointers are shared
					// with the tracer's retained events.
					a := obs.SpanArgs{}
					if tail[i].Args != nil {
						a = *tail[i].Args
					}
					a.Unit = unitID + 1
					tail[i].Args = &a
				}
				m.Spans = tail
			}
		}
		if flight != nil {
			var tail []obs.FlightEvent
			for _, ev := range flight.Events() {
				if ev.Seq > flightSeq {
					tail = append(tail, ev)
				}
			}
			if len(tail) > 0 {
				flightSeq = tail[len(tail)-1].Seq
				m.Flight = tail
			}
		}
	}

	if err := enc.Encode(workerMsg{
		Type: "ready", Pid: os.Getpid(),
		TraceStartUnixNs: tracer.StartUnixNano(),
	}); err != nil {
		return 1
	}

	for {
		var um unitMsg
		if err := dec.Decode(&um); err != nil {
			if err == io.EOF {
				return 0 // supervisor closed the channel: clean shutdown
			}
			fmt.Fprintf(stderr, "psan-worker: reading unit: %v\n", err)
			return 1
		}
		// The cut is checkpoint-shaped on purpose: Validate catches a
		// supervisor/worker skew (program, mode, seed, model, reduction)
		// before any divergent exploration happens.
		if err := um.Cut.Validate(prog.Name(), opt); err != nil {
			enc.Encode(workerMsg{Type: "fatal", ID: um.ID, Error: err.Error(), Permanent: true})
			continue
		}
		if chaos.poison == um.ID {
			fmt.Fprintf(stderr, "psan-worker: chaos: poisoning unit %d\n", um.ID)
			selfKill()
		}
		// Heartbeats ride the per-execution hook, rate-limited to a
		// quarter lease so chatty units don't flood the pipe. A hung
		// execution stops calling the hook, the heartbeats stop, and the
		// supervisor's lease expires: hangs need no extra detection.
		hbEvery := time.Duration(um.LeaseMS) * time.Millisecond / 4
		lastHB := time.Now()
		hooks := explore.UnitHooks{
			OnExec: func(n int) {
				if um.Attempt == 0 && chaos.killAfter > 0 && n >= chaos.killAfter {
					fmt.Fprintf(stderr, "psan-worker: chaos: self-kill in unit %d after %d execs\n", um.ID, n)
					selfKill()
				}
				if um.Attempt == 0 && chaos.hangUnit == um.ID {
					fmt.Fprintf(stderr, "psan-worker: chaos: hanging in unit %d\n", um.ID)
					select {} // silent forever; the lease must reap us
				}
				if now := time.Now(); now.Sub(lastHB) >= hbEvery {
					lastHB = now
					m := workerMsg{Type: "hb", ID: um.ID, Execs: n}
					attach(&m, um.ID)
					enc.Encode(m)
				}
			},
			OnClassify: func(c explore.UnitClassification) {
				cc := c
				enc.Encode(workerMsg{Type: "classified", ID: um.ID, Class: &cc})
			},
		}
		ur, err := explore.RunUnit(prog, opt, um.Spec, hooks)
		if err != nil {
			enc.Encode(workerMsg{Type: "fatal", ID: um.ID, Error: err.Error(), Permanent: true})
			continue
		}
		m := workerMsg{Type: "result", ID: um.ID, Result: ur}
		attach(&m, um.ID)
		if err := enc.Encode(m); err != nil {
			fmt.Fprintf(stderr, "psan-worker: writing result: %v\n", err)
			return 1
		}
	}
}
