// Worker-process main loop (the body of cmd/psan-worker, and of the
// test binary's re-exec mode): speak the unit protocol on
// stdin/stdout, run each unit in-process via explore.RunUnit, report
// heartbeats, classifications, and results.
package dispatch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/explore"
)

// ChaosEnv, when set in a worker process's environment, makes the
// worker sabotage itself for the kill-chaos tests and CI job:
//
//	kill-after=N   SIGKILL self after N executions of a unit, first
//	               delivery attempts only (every unit dies once, every
//	               redelivery completes)
//	hang=ID        on unit ID's first attempt, stop heartbeating and
//	               block forever (exercises lease expiry; the
//	               supervisor must SIGKILL this worker)
//	poison=ID      SIGKILL self at the start of every attempt of unit
//	               ID (exercises retry exhaustion and quarantine)
const ChaosEnv = "PSAN_DISPATCH_CHAOS"

// chaosPlan is the parsed ChaosEnv sabotage.
type chaosPlan struct {
	killAfter int // >0: self-kill after this many execs (attempt 0)
	hangUnit  int // >=0: block forever in unit (attempt 0)
	poison    int // >=0: self-kill on every attempt of this unit
}

func parseChaos(s string) chaosPlan {
	p := chaosPlan{killAfter: 0, hangUnit: -1, poison: -1}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		switch k {
		case "kill-after":
			p.killAfter = n
		case "hang":
			p.hangUnit = n
		case "poison":
			p.poison = n
		}
	}
	return p
}

// selfKill is the chaos kill: SIGKILL, exactly what an OOM kill or an
// operator kill -9 delivers — no deferred functions, no result flush.
func selfKill() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}

// ProgramResolver maps the hello message's program reference to a
// runnable program. cmd/psan-worker compiles the source file at path;
// the test harness resolves registered in-process programs by name.
type ProgramResolver func(name, path string) (explore.Program, error)

// WorkerMain runs the worker protocol until stdin closes (supervisor
// shutdown) and returns the process exit code. It is transport-pure —
// no flag parsing, no os.Exit — so tests run it over in-memory pipes
// and cmd/psan-worker stays a three-line wrapper.
func WorkerMain(stdin io.Reader, stdout, stderr io.Writer, resolve ProgramResolver) int {
	chaos := parseChaos(os.Getenv(ChaosEnv))
	dec := json.NewDecoder(bufio.NewReader(stdin))
	enc := json.NewEncoder(stdout)

	var hello helloMsg
	if err := dec.Decode(&hello); err != nil {
		fmt.Fprintf(stderr, "psan-worker: reading hello: %v\n", err)
		return 1
	}
	prog, err := resolve(hello.ProgramName, hello.ProgramPath)
	if err != nil {
		enc.Encode(workerMsg{Type: "fatal", Error: "resolving program: " + err.Error(), Permanent: true})
		return 1
	}
	opt := optionsFromWire(hello.Opts)
	if err := enc.Encode(workerMsg{Type: "ready"}); err != nil {
		return 1
	}

	for {
		var um unitMsg
		if err := dec.Decode(&um); err != nil {
			if err == io.EOF {
				return 0 // supervisor closed the channel: clean shutdown
			}
			fmt.Fprintf(stderr, "psan-worker: reading unit: %v\n", err)
			return 1
		}
		// The cut is checkpoint-shaped on purpose: Validate catches a
		// supervisor/worker skew (program, mode, seed, model, reduction)
		// before any divergent exploration happens.
		if err := um.Cut.Validate(prog.Name(), opt); err != nil {
			enc.Encode(workerMsg{Type: "fatal", ID: um.ID, Error: err.Error(), Permanent: true})
			continue
		}
		if chaos.poison == um.ID {
			fmt.Fprintf(stderr, "psan-worker: chaos: poisoning unit %d\n", um.ID)
			selfKill()
		}
		// Heartbeats ride the per-execution hook, rate-limited to a
		// quarter lease so chatty units don't flood the pipe. A hung
		// execution stops calling the hook, the heartbeats stop, and the
		// supervisor's lease expires: hangs need no extra detection.
		hbEvery := time.Duration(um.LeaseMS) * time.Millisecond / 4
		lastHB := time.Now()
		hooks := explore.UnitHooks{
			OnExec: func(n int) {
				if um.Attempt == 0 && chaos.killAfter > 0 && n >= chaos.killAfter {
					fmt.Fprintf(stderr, "psan-worker: chaos: self-kill in unit %d after %d execs\n", um.ID, n)
					selfKill()
				}
				if um.Attempt == 0 && chaos.hangUnit == um.ID {
					fmt.Fprintf(stderr, "psan-worker: chaos: hanging in unit %d\n", um.ID)
					select {} // silent forever; the lease must reap us
				}
				if now := time.Now(); now.Sub(lastHB) >= hbEvery {
					lastHB = now
					enc.Encode(workerMsg{Type: "hb", ID: um.ID, Execs: n})
				}
			},
			OnClassify: func(c explore.UnitClassification) {
				cc := c
				enc.Encode(workerMsg{Type: "classified", ID: um.ID, Class: &cc})
			},
		}
		ur, err := explore.RunUnit(prog, opt, um.Spec, hooks)
		if err != nil {
			enc.Encode(workerMsg{Type: "fatal", ID: um.ID, Error: err.Error(), Permanent: true})
			continue
		}
		if err := enc.Encode(workerMsg{Type: "result", ID: um.ID, Result: ur}); err != nil {
			fmt.Fprintf(stderr, "psan-worker: writing result: %v\n", err)
			return 1
		}
	}
}
