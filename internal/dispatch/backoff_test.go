package dispatch

import (
	"testing"
	"time"
)

// TestBackoffDeterministic: the redelivery schedule is a pure function
// of (policy, unit key, attempt) — no wall clock, no global RNG — so
// two computations of the same schedule are identical.
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Retries: 3, Seed: 7}
	for attempt := 1; attempt <= 6; attempt++ {
		a := p.Delay("mc:3", attempt)
		b := p.Delay("mc:3", attempt)
		if a != b {
			t.Fatalf("Delay(mc:3, %d) unstable: %v vs %v", attempt, a, b)
		}
	}
}

// TestBackoffExponentialEnvelope: each delay sits inside the
// exponential envelope Base·2^(attempt-1) ± Base/2, clamped to
// [0, Cap].
func TestBackoffExponentialEnvelope(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Retries: 3, Seed: 7}
	for attempt := 1; attempt <= 10; attempt++ {
		d := p.Delay("random:0-25", attempt)
		if d < 0 || d > p.Cap {
			t.Fatalf("Delay(attempt %d) = %v outside [0, %v]", attempt, d, p.Cap)
		}
		exp := p.Base << uint(attempt-1)
		if exp > p.Cap {
			exp = p.Cap
		}
		lo, hi := exp-p.Base/2, exp+p.Base/2
		if hi > p.Cap {
			hi = p.Cap
		}
		if lo < 0 {
			lo = 0
		}
		if d < lo || d > hi {
			t.Errorf("Delay(attempt %d) = %v outside envelope [%v, %v]", attempt, d, lo, hi)
		}
	}
}

// TestBackoffJitterVariesByKey: simultaneous failures of different
// units don't redeliver in lockstep. (FNV jitter is deterministic, so
// this locks in the actual spread for the seed used by the test.)
func TestBackoffJitterVariesByKey(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Retries: 3, Seed: 7}
	seen := map[time.Duration]bool{}
	for _, key := range []string{"random:0-25", "random:25-50", "random:50-75", "mc:0", "mc:1"} {
		seen[p.Delay(key, 1)] = true
	}
	if len(seen) < 2 {
		t.Errorf("all keys share one first-redelivery delay %v — jitter is not keyed", seen)
	}
}

// TestBackoffNextSchedule drives Next with a fake clock and asserts the
// exact schedule: redeliver-at = now + Delay for every attempt within
// the budget, poison exactly when the budget is exhausted.
func TestBackoffNextSchedule(t *testing.T) {
	p := RetryPolicy{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Retries: 3, Seed: 99}
	clock := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	key := "mc:5"
	for attempts := 1; attempts <= 3; attempts++ {
		at, poison := p.Next(key, attempts, clock)
		if poison {
			t.Fatalf("Next(attempts=%d) poisoned inside the budget of 3", attempts)
		}
		if want := clock.Add(p.Delay(key, attempts)); !at.Equal(want) {
			t.Errorf("Next(attempts=%d) = %v, want now+Delay = %v", attempts, at, want)
		}
		clock = clock.Add(time.Second) // the clock only offsets, never decides
	}
	if _, poison := p.Next(key, 4, clock); !poison {
		t.Error("Next(attempts=4) did not poison after a budget of 3 retries")
	}
}

// TestBackoffRetriesSemantics: 0 means the default budget, negative
// means no redeliveries at all.
func TestBackoffRetriesSemantics(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	def := RetryPolicy{}
	if _, poison := def.Next("u", 3, now); poison {
		t.Error("default policy poisoned within its 3-retry budget")
	}
	if _, poison := def.Next("u", 4, now); !poison {
		t.Error("default policy did not poison past 3 retries")
	}
	none := RetryPolicy{Retries: -1}
	if _, poison := none.Next("u", 1, now); !poison {
		t.Error("Retries<0 should poison on the first failure")
	}
}
