// Supervisor↔worker wire protocol: JSON lines over the worker process's
// stdin (supervisor→worker) and stdout (worker→supervisor). The
// vocabulary is deliberately the checkpoint format (internal/explore,
// version 3): a work unit is described to the worker as a
// checkpoint-shaped cut, which the worker Validates against its own
// program and options before running — a version/model/reduction skew
// between supervisor and worker binaries surfaces as a typed
// explore.MismatchError in a fatal message, not as silently divergent
// exploration.
package dispatch

import (
	"time"

	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/persist"
)

// helloMsg is the supervisor's first message on a fresh worker process:
// the program to load and the campaign options. The worker answers with
// a ready ack (or a permanent fatal if it cannot load the program).
type helloMsg struct {
	Type        string        `json:"type"` // "hello"
	ProgramName string        `json:"programName"`
	ProgramPath string        `json:"programPath,omitempty"`
	Opts        wireOptions   `json:"opts"`
	Telemetry   telemetrySpec `json:"telemetry"`
}

// telemetrySpec mirrors the supervisor's attached obs sinks: the worker
// builds a matching local bundle and ships its contents back — metric
// deltas and span tails on heartbeats, a final top-up plus flight
// events on the result. A field being false means the supervisor has no
// such sink, so recording (and shipping) would be wasted work.
type telemetrySpec struct {
	Metrics bool `json:"metrics,omitempty"`
	Trace   bool `json:"trace,omitempty"`
	Flight  bool `json:"flight,omitempty"`
}

// wireOptions is the subset of explore.Options that defines the
// canonical execution stream (plus the per-execution guards). Anything
// omitted here must not change what a unit produces.
type wireOptions struct {
	Mode             string `json:"mode"`
	Executions       int    `json:"executions"`
	Seed             int64  `json:"seed"`
	Model            string `json:"model,omitempty"`
	Window           int    `json:"window,omitempty"`
	StoreBuffers     bool   `json:"storeBuffers,omitempty"`
	NoSteering       bool   `json:"noSteering,omitempty"`
	FreshWorlds      bool   `json:"freshWorlds,omitempty"`
	DisableSnapshots bool   `json:"disableSnapshots,omitempty"`
	DisableDPOR      bool   `json:"disableDPOR,omitempty"`
	NoStateCache     bool   `json:"noStateCache,omitempty"`
	DisableChecker   bool   `json:"disableChecker,omitempty"`
	Provenance       bool   `json:"provenance,omitempty"`
	OpLimit          int    `json:"opLimit,omitempty"`
	StepTimeoutNS    int64  `json:"stepTimeoutNs,omitempty"`
}

// optionsToWire extracts the stream-defining knobs.
func optionsToWire(opt explore.Options) wireOptions {
	return wireOptions{
		Mode:             opt.Mode.String(),
		Executions:       opt.Executions,
		Seed:             opt.Seed,
		Model:            opt.Model.Name,
		Window:           opt.Model.Window,
		StoreBuffers:     opt.StoreBuffers,
		NoSteering:       opt.NoSteering,
		FreshWorlds:      opt.FreshWorlds,
		DisableSnapshots: opt.DisableSnapshots,
		DisableDPOR:      opt.DisableDPOR,
		NoStateCache:     opt.NoStateCache,
		DisableChecker:   opt.DisableChecker,
		Provenance:       opt.Provenance,
		OpLimit:          opt.OpLimit,
		StepTimeoutNS:    int64(opt.StepTimeout),
	}
}

// optionsFromWire rebuilds the worker-side explore.Options.
func optionsFromWire(w wireOptions) explore.Options {
	opt := explore.Options{
		Executions:       w.Executions,
		Seed:             w.Seed,
		Model:            persist.Config{Name: w.Model, Window: w.Window},
		StoreBuffers:     w.StoreBuffers,
		NoSteering:       w.NoSteering,
		FreshWorlds:      w.FreshWorlds,
		DisableSnapshots: w.DisableSnapshots,
		DisableDPOR:      w.DisableDPOR,
		NoStateCache:     w.NoStateCache,
		DisableChecker:   w.DisableChecker,
		Provenance:       w.Provenance,
		OpLimit:          w.OpLimit,
		StepTimeout:      time.Duration(w.StepTimeoutNS),
	}
	if w.Mode == explore.ModelCheck.String() {
		opt.Mode = explore.ModelCheck
	} else {
		opt.Mode = explore.Random
	}
	return opt
}

// unitMsg delivers one work unit. Cut is the checkpoint-shaped identity
// the worker validates; Spec is the unit itself (Cut.MC and Spec.MC are
// the same block — the redundancy is one line of JSON and buys the
// validation).
type unitMsg struct {
	Type    string             `json:"type"` // "unit"
	ID      int                `json:"id"`
	Attempt int                `json:"attempt"` // 0-based delivery attempt
	LeaseMS int64              `json:"leaseMs"`
	Cut     explore.Checkpoint `json:"cut"`
	Spec    explore.UnitSpec   `json:"spec"`
}

// workerMsg is every worker→supervisor message.
//
//	ready       worker loaded the program and accepts units; carries the
//	            worker's pid and tracer clock origin for span rebasing
//	hb          lease heartbeat (Execs = executions so far in the unit);
//	            piggybacks the metric delta and span tail since the last
//	            ship
//	classified  early subtree classification (mc units; lets the
//	            supervisor dispatch the successor before this unit ends)
//	result      the unit's completed stream, plus the final telemetry
//	            top-up (delta, spans, flight events)
//	fatal       the unit (or the worker) failed; Permanent means
//	            redelivery cannot help (validation mismatch, unloadable
//	            program) and the unit should be quarantined directly
type workerMsg struct {
	Type      string                      `json:"type"`
	ID        int                         `json:"id,omitempty"`
	Execs     int                         `json:"execs,omitempty"`
	Class     *explore.UnitClassification `json:"class,omitempty"`
	Result    *explore.UnitResult         `json:"result,omitempty"`
	Error     string                      `json:"error,omitempty"`
	Permanent bool                        `json:"permanent,omitempty"`

	// Telemetry payloads (ready/hb/result; see the type comment).
	Pid              int               `json:"pid,omitempty"`
	TraceStartUnixNs int64             `json:"traceStartUnixNs,omitempty"`
	Metrics          *obs.Snapshot     `json:"metrics,omitempty"`
	Spans            []obs.SpanEvent   `json:"spans,omitempty"`
	Flight           []obs.FlightEvent `json:"flight,omitempty"`
}
