// The supervisor: unit scheduling, leases, redelivery, degradation,
// and the ordered merge.
package dispatch

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/explore"
	"repro/internal/obs"
)

// WorkerBinEnv overrides worker-binary discovery (highest precedence).
const WorkerBinEnv = "PSAN_WORKER_BIN"

// Options configures a supervised campaign.
type Options struct {
	// Explore carries the campaign knobs, interpreted as in explore.Run:
	// Workers is the worker-process count, Executions/Seed/Model/
	// reductions define the canonical stream, Resume continues a v3
	// checkpoint, Deadline/Context stop the campaign. Obs instruments
	// the supervisor (dispatch.* bundle) and receives the fleet
	// telemetry: worker processes run matching sinks and ship metric
	// deltas, span tails, and flight events back on heartbeats and
	// results. Deltas are committed per successful delivery attempt and
	// rolled back on failure, so on a campaign with no poisoned units
	// the merged explore.*/pmem.*/persist.* counters equal a clean
	// in-process run's to the bit (gauges are high-water advisory).
	Explore explore.Options
	// Program is the compiled program. It always runs in-process for
	// degraded mode; worker processes reload it from ProgramPath (or,
	// in tests, resolve it by name).
	Program explore.Program
	// ProgramPath is the source path shipped to worker processes.
	ProgramPath string
	// WorkerBin locates the psan-worker binary. Empty means discover:
	// $PSAN_WORKER_BIN, then psan-worker next to this executable, then
	// $PATH. Discovery failure is not an error — the campaign runs
	// degraded (in-process).
	WorkerBin string
	// WorkerArgs are extra argv for the worker binary (the test harness
	// re-execs the test binary into worker mode this way).
	WorkerArgs []string
	// WorkerEnv is extra environment for worker processes (appended to
	// this process's).
	WorkerEnv []string
	// Lease is the heartbeat deadline: a delivered unit whose worker
	// sends nothing for this long is presumed hung, its worker killed,
	// and the unit redelivered. Must exceed the longest single
	// execution. Default 10s.
	Lease time.Duration
	// Retry is the redelivery schedule.
	Retry RetryPolicy
	// InProcess forces degraded mode: units run in this process (no
	// isolation, no kill resilience — but bit-identical results).
	InProcess bool
	// UnitExecs sizes random-mode units (executions per unit). 0: an
	// eighth of the per-worker share, at least 16.
	UnitExecs int

	// spawnFailLimit is how many consecutive spawn failures a slot
	// tolerates before latching degraded mode (test hook; 0 = 3).
	spawnFailLimit int
	// haltAfterUnits, when >0, stops the campaign like a deadline once
	// that many units have merged — the supervisor-restart tests cut
	// campaigns at deterministic points with it.
	haltAfterUnits int
}

// unitState is the lease state machine:
//
//	pending --deliver--> leased --result--> done
//	   ^                    |
//	   +----backoff---------+--retries exhausted--> poisoned
type unitState int

const (
	unitPending unitState = iota
	unitLeased
	unitDone
	unitPoisoned
)

// unit is one schedulable work unit and its delivery history.
type unit struct {
	id        int
	spec      explore.UnitSpec
	state     unitState
	attempts  int       // deliveries so far
	notBefore time.Time // backoff release (pending units)
	result    *explore.UnitResult

	classified bool // mc: subtree classification already applied

	// failure provenance (latest attempt)
	lastErr    string
	exitStatus string
	stderrTail string
}

// key identifies the unit for backoff jitter derivation.
func (u *unit) key() string {
	if u.spec.Random != nil {
		return fmt.Sprintf("random:%d-%d", u.spec.Random.Lo, u.spec.Random.Hi)
	}
	return fmt.Sprintf("mc:%d", u.spec.MC.Subtree)
}

type supervisor struct {
	opt   Options
	hello helloMsg
	bin   string // "" => degraded from the start
	dm    obs.DispatchMetrics

	// Fleet-telemetry sinks (all nil-safe): the supervisor's own
	// registry/tracer/flight recorder, which worker shipments merge
	// into.
	reg *obs.Registry
	tr  *obs.Tracer
	fr  *obs.FlightRecorder

	mu   sync.Mutex
	cond *sync.Cond

	units  []*unit
	mcDone bool // mc: the subtree chain is closed
	mcKeys []explore.CacheEntry

	draining   bool // stop delivering (stop, poison, or completion)
	stopReason string
	degraded   bool
	poisoned   []*unit

	redeliveries int
	restarts     int
	mergedUnits  int

	procs map[int]*proc // live proc per slot, for kill-on-stop
	start time.Time     // campaign start, for Result.Elapsed
}

// Run executes the campaign under process isolation and returns the
// merged Result — bit-identical to explore.Run over the same options.
func Run(opt Options) *explore.Result {
	return newSupervisor(opt).run()
}

// newSupervisor applies defaults, resolves the worker binary, and seeds
// the unit set.
func newSupervisor(opt Options) *supervisor {
	if opt.Explore.Executions == 0 {
		opt.Explore.Executions = 1000
	}
	if opt.Explore.Workers <= 0 {
		opt.Explore.Workers = 1
	}
	if opt.Lease <= 0 {
		opt.Lease = 10 * time.Second
	}
	if opt.spawnFailLimit <= 0 {
		opt.spawnFailLimit = 3
	}
	s := &supervisor{
		opt: opt,
		dm:  obs.DispatchInstruments(opt.Explore.Obs.Reg()),
		reg: opt.Explore.Obs.Reg(),
		tr:  opt.Explore.Obs.Trace(),
		fr:  opt.Explore.Obs.Recorder(),
		hello: helloMsg{
			Type:        "hello",
			ProgramName: opt.Program.Name(),
			ProgramPath: opt.ProgramPath,
			Opts:        optionsToWire(opt.Explore),
		},
		procs: make(map[int]*proc),
	}
	s.hello.Telemetry = telemetrySpec{
		Metrics: s.reg != nil,
		Trace:   s.tr != nil,
		Flight:  s.fr != nil,
	}
	s.cond = sync.NewCond(&s.mu)
	s.start = time.Now()
	if !opt.InProcess {
		s.bin = resolveWorkerBin(opt.WorkerBin)
	}
	if s.bin == "" {
		s.degraded = true
		s.dm.Degraded.Inc()
		if !opt.InProcess {
			s.fr.Record("dispatch", "degraded", -1, "no worker binary found")
		}
	}
	s.seedUnits()
	return s
}

// run drives the campaign: stop watcher, one goroutine per worker slot,
// ordered merge.
func (s *supervisor) run() *explore.Result {
	opt := s.opt

	// External stops: context cancellation and the wall-clock deadline.
	ctx := opt.Explore.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	reasonIs := "canceled"
	if opt.Explore.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.Explore.Deadline)
		defer cancel()
	}
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			if ctx.Err() == context.DeadlineExceeded && opt.Explore.Deadline > 0 {
				reasonIs = "deadline"
			}
			s.stop(reasonIs)
		case <-stopWatch:
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < opt.Explore.Workers; i++ {
		wg.Add(1)
		go s.slot(i, &wg)
	}
	wg.Wait()
	close(stopWatch)

	return s.merge()
}

// seedUnits creates the initial unit set: the whole range partition in
// random mode, the first (or resumed-cut) subtree in model-check mode.
func (s *supervisor) seedUnits() {
	opt := &s.opt.Explore
	if opt.Mode == explore.Random {
		lo := 0
		if ck := opt.Resume; ck != nil {
			lo = ck.Collected
		}
		chunk := s.opt.UnitExecs
		if chunk <= 0 {
			chunk = (opt.Executions - lo) / (opt.Workers * 8)
			if chunk < 16 {
				chunk = 16
			}
		}
		for ; lo < opt.Executions; lo += chunk {
			hi := lo + chunk
			if hi > opt.Executions {
				hi = opt.Executions
			}
			s.addUnit(explore.UnitSpec{Random: &explore.RandomRange{Lo: lo, Hi: hi}})
		}
		return
	}
	mc := &explore.MCCheckpoint{}
	if ck := opt.Resume; ck != nil && ck.MC != nil {
		mc = &explore.MCCheckpoint{
			Subtree:   ck.MC.Subtree,
			Started:   ck.MC.Started,
			Trail:     ck.MC.Trail,
			SpawnNext: ck.MC.SpawnNext,
			DPORKeys:  ck.MC.DPORKeys,
			CacheKeys: append([]explore.CacheEntry(nil), ck.MC.CacheKeys...),
		}
		s.mcKeys = append(s.mcKeys, ck.MC.CacheKeys...)
	}
	u := s.addUnit(explore.UnitSpec{MC: mc})
	if mc.Started {
		// A resumed mid-subtree cut classified before the checkpoint;
		// its successor (if any) is spawned here, like the engine's
		// resume path.
		u.classified = true
		if mc.SpawnNext {
			s.addUnit(explore.UnitSpec{MC: &explore.MCCheckpoint{
				Subtree:   mc.Subtree + 1,
				CacheKeys: append([]explore.CacheEntry(nil), s.mcKeys...),
			}})
		} else {
			s.mcDone = true
		}
	}
}

// addUnit appends a unit in canonical position. Callers hold s.mu or
// run before the slots start.
func (s *supervisor) addUnit(spec explore.UnitSpec) *unit {
	u := &unit{id: len(s.units), spec: spec}
	s.units = append(s.units, u)
	return u
}

// budgetLocked computes a model-check unit's execution budget: the cap
// minus every earlier unit's known executions. Like the engine's
// allowance it is a conservative overestimate (in-flight earlier units
// count 0), so a unit may overshoot — the merge truncates, exactly like
// the engine's assembly — but can never stop short of the canonical
// need. Returns false when the budget is provably empty.
func (s *supervisor) budgetLocked(u *unit) (int, bool) {
	sum := 0
	if ck := s.opt.Explore.Resume; ck != nil {
		sum = ck.Collected
	}
	for _, v := range s.units {
		if v.id >= u.id {
			break
		}
		if v.state == unitDone {
			sum += len(v.result.Execs)
		}
	}
	rem := s.opt.Explore.Executions - sum
	if rem <= 0 {
		return 0, false
	}
	return rem, true
}

// next blocks until a unit is deliverable (lowest id first, honoring
// backoff release times) and leases it; nil means the campaign is over
// for this slot (drained, stopped, or every unit is terminal).
func (s *supervisor) next() *unit {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return nil
		}
		live := false
		var ready *unit
		var soonest time.Time
		now := time.Now()
		for _, u := range s.units {
			switch u.state {
			case unitLeased:
				live = true
			case unitPending:
				live = true
				if !u.notBefore.After(now) {
					ready = u
				} else if soonest.IsZero() || u.notBefore.Before(soonest) {
					soonest = u.notBefore
				}
			}
			if ready != nil {
				break
			}
		}
		if ready != nil {
			if s.opt.Explore.Mode == explore.ModelCheck {
				b, ok := s.budgetLocked(ready)
				if !ok {
					// The cap is exhausted before this unit: it can never
					// contribute collected executions. Leave it pending —
					// the merge records it as the cut, exactly like an
					// engine unit that bowed out on its allowance.
					s.drainLocked()
					return nil
				}
				ready.spec.Budget = b
			}
			ready.state = unitLeased
			ready.attempts++
			s.dm.LeasesGranted.Inc()
			s.dm.UnitsDispatched.Inc()
			return ready
		}
		if !live && (s.opt.Explore.Mode == explore.Random || s.mcDone) {
			// Frontier drained.
			s.drainLocked()
			return nil
		}
		if !live && !s.mcDone {
			// No deliverable unit but the chain is open: the next subtree
			// appears when the current one classifies. With every unit
			// terminal and none classified-with-successor, the chain is
			// wedged (can only happen after a poison already latched
			// draining). Wait for a broadcast either way.
		}
		if !soonest.IsZero() {
			// Wake ourselves when the earliest backoff releases.
			d := time.Until(soonest)
			time.AfterFunc(d, func() {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			})
		}
		s.cond.Wait()
	}
}

// drainLocked latches the campaign-over state and wakes every slot.
func (s *supervisor) drainLocked() {
	s.draining = true
	s.cond.Broadcast()
}

// stop is the external-stop path (deadline, cancellation): stop
// delivering, kill every live worker (their units return to pending
// and become the merge cut).
func (s *supervisor) stop(reason string) {
	s.mu.Lock()
	if s.stopReason == "" {
		s.stopReason = reason
		s.fr.Record("dispatch", "stop", -1, reason)
	}
	s.drainLocked()
	procs := make([]*proc, 0, len(s.procs))
	for _, p := range s.procs {
		procs = append(procs, p)
	}
	s.mu.Unlock()
	for _, p := range procs {
		p.kill()
	}
}

// classify applies a subtree classification: record the cache
// registration and extend the unit chain. Idempotent per unit — a
// redelivered unit re-classifies identically and must not double-
// register or spawn a duplicate successor.
func (s *supervisor) classify(u *unit, c explore.UnitClassification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.classifyLocked(u, c)
}

func (s *supervisor) classifyLocked(u *unit, c explore.UnitClassification) {
	if u.classified || s.opt.Explore.Mode != explore.ModelCheck {
		return
	}
	u.classified = true
	if c.Keyed {
		s.mcKeys = append(s.mcKeys, c.Key)
	}
	if u.id == len(s.units)-1 {
		if c.InjectionFired {
			s.addUnit(explore.UnitSpec{MC: &explore.MCCheckpoint{
				Subtree:   u.spec.MC.Subtree + 1,
				CacheKeys: append([]explore.CacheEntry(nil), s.mcKeys...),
			}})
			s.cond.Broadcast()
		} else {
			s.mcDone = true
			s.cond.Broadcast()
		}
	}
}

// complete merges bookkeeping for a finished unit.
func (s *supervisor) complete(u *unit, ur *explore.UnitResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.state != unitLeased {
		return
	}
	u.state = unitDone
	u.result = ur
	s.mergedUnits++
	s.dm.UnitsMerged.Inc()
	if ur.Classified {
		// Fallback for a lost early-classification message; no-op if the
		// classify callback already ran.
		s.classifyLocked(u, ur.Class)
	}
	if s.opt.haltAfterUnits > 0 && s.mergedUnits >= s.opt.haltAfterUnits && s.stopReason == "" {
		s.stopReason = "halted"
		s.drainLocked()
	}
	s.cond.Broadcast()
}

// fail records a failed delivery and schedules redelivery or poison.
func (s *supervisor) fail(u *unit, pe *procError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.state != unitLeased {
		return // the stop path already reclaimed it
	}
	u.lastErr = pe.Error()
	u.exitStatus = pe.exitStatus
	u.stderrTail = pe.stderrTail
	if pe.reason == "lease-expired" {
		s.dm.LeasesExpired.Inc()
		s.fr.Record("dispatch", "lease-expired", u.id, pe.detail)
	}
	if s.draining {
		// Killed by the stop path: back to pending so the merge cuts
		// here; no redelivery, no retry-budget charge.
		u.state = unitPending
		return
	}
	at, poison := s.opt.Retry.Next(u.key(), u.attempts, time.Now())
	if poison || pe.permanent {
		u.state = unitPoisoned
		s.poisoned = append(s.poisoned, u)
		s.dm.PoisonUnits.Inc()
		s.fr.Record("dispatch", "poison", u.id,
			fmt.Sprintf("after %d attempts: %s", u.attempts, pe.Error()))
		// Coverage is lost at this unit: everything canonically after it
		// can never be collected, so stop dispatching and drain.
		s.drainLocked()
		return
	}
	u.state = unitPending
	u.notBefore = at
	s.redeliveries++
	s.dm.Redeliveries.Inc()
	s.dm.BackoffNanos.Add(int64(time.Until(at)))
	s.fr.Record("dispatch", "redeliver", u.id,
		fmt.Sprintf("attempt %d failed: %s", u.attempts, pe.Error()))
	s.cond.Broadcast()
}

// runInProcess is degraded mode's delivery: the same RunUnit the worker
// binary runs, same spec, same hooks — same bytes.
func (s *supervisor) runInProcess(u *unit) {
	ur, err := explore.RunUnit(s.opt.Program, s.opt.Explore, u.spec, explore.UnitHooks{
		OnClassify: func(c explore.UnitClassification) { s.classify(u, c) },
	})
	if err != nil {
		s.fail(u, &procError{reason: "fatal", detail: err.Error(), permanent: true})
		return
	}
	s.complete(u, ur)
}

// slot is one worker slot's loop: lease units, deliver them to this
// slot's worker process (spawning or respawning as needed), and fold
// outcomes back. Repeated spawn failure latches campaign-wide degraded
// mode instead of failing the run.
func (s *supervisor) slot(i int, wg *sync.WaitGroup) {
	defer wg.Done()
	var pr *proc
	everSpawned := false
	spawnFails := 0
	defer func() {
		if pr != nil {
			pr.kill()
			s.mu.Lock()
			delete(s.procs, i)
			s.mu.Unlock()
		}
	}()
	for {
		u := s.next()
		if u == nil {
			return
		}
		s.mu.Lock()
		degraded := s.degraded
		s.mu.Unlock()
		if degraded {
			s.runInProcess(u)
			continue
		}
		if pr == nil {
			p, err := spawn(s.bin, s.opt.WorkerArgs, append(os.Environ(), s.opt.WorkerEnv...), s.hello, s.opt.Lease)
			if err != nil {
				spawnFails++
				s.mu.Lock()
				// Spawn trouble is not the unit's fault: back to pending
				// with its attempt uncharged.
				u.state = unitPending
				u.attempts--
				if spawnFails >= s.opt.spawnFailLimit {
					s.degraded = true
					s.dm.Degraded.Inc()
					s.fr.Record("dispatch", "degraded", -1,
						fmt.Sprintf("slot %d: %d consecutive spawn failures", i, spawnFails))
				}
				s.cond.Broadcast()
				s.mu.Unlock()
				continue
			}
			spawnFails = 0
			pr = p
			s.mu.Lock()
			if everSpawned {
				s.restarts++
				s.dm.WorkerRestarts.Inc()
				s.fr.Record("dispatch", "worker-restart", -1,
					fmt.Sprintf("slot %d respawned as pid %d", i, p.pid))
			} else {
				s.fr.Record("dispatch", "spawn", -1,
					fmt.Sprintf("slot %d spawned pid %d", i, p.pid))
			}
			s.procs[i] = pr
			s.dm.WorkersLive.Add(1)
			s.mu.Unlock()
			everSpawned = true
			s.tr.NameProcess(p.pid, fmt.Sprintf("psan-worker %d (slot %d)", p.pid, i))
			s.tr.NameThreadFor(p.pid, 1, "exec")
			s.tr.NameThread(i+1, fmt.Sprintf("slot-%d", i))
		}
		um := unitMsg{
			Type:    "unit",
			ID:      u.id,
			Attempt: u.attempts - 1,
			LeaseMS: int64(s.opt.Lease / time.Millisecond),
			Spec:    u.spec,
			Cut:     s.cutFor(u),
		}
		// Telemetry shipped during this delivery attempt is applied to
		// the supervisor sinks as it arrives and accumulated; a failed
		// attempt rolls its metric deltas back, so the registry only ever
		// retains exactly one successful run per merged unit. Spans and
		// flight events are timeline records of work that really executed
		// — they stay.
		var acc obs.Snapshot
		applied := false
		onTel := func(m workerMsg) {
			if m.Metrics != nil {
				s.reg.ApplyDelta(*m.Metrics, 1)
				acc.Accumulate(*m.Metrics)
				applied = true
			}
			if len(m.Spans) > 0 {
				s.tr.Ingest(m.Spans, pr.traceStart)
			}
			s.fr.Ingest(m.Flight)
		}
		start := time.Now()
		ur, err := pr.deliver(um, s.opt.Lease, func(c explore.UnitClassification) { s.classify(u, c) }, onTel)
		s.tr.Complete(i+1, "dispatch", fmt.Sprintf("unit %d attempt %d", u.id, um.Attempt),
			start, time.Since(start), -1)
		if err != nil {
			// deliver killed the proc (or found it dead) on every error.
			if applied {
				s.reg.ApplyDelta(acc, -1)
			}
			s.mu.Lock()
			delete(s.procs, i)
			s.dm.WorkersLive.Add(-1)
			s.mu.Unlock()
			pr = nil
			s.fail(u, err.(*procError))
			continue
		}
		s.dm.UnitNanos.Observe(int64(time.Since(start)))
		s.complete(u, ur)
	}
}

// cutFor shapes the unit as a checkpoint for worker-side validation.
func (s *supervisor) cutFor(u *unit) explore.Checkpoint {
	ck := explore.Checkpoint{
		Version: explore.CheckpointVersion,
		Program: s.opt.Program.Name(),
		Mode:    s.opt.Explore.Mode.String(),
		Seed:    s.opt.Explore.Seed,
		Model:   s.opt.Explore.Model.Name,
		Window:  s.opt.Explore.Model.Window,
		DPOR:    !s.opt.Explore.DisableDPOR,
		MC:      u.spec.MC,
	}
	return ck
}

// merge assembles every unit stream in canonical order and decorates
// the Result with the supervision record.
func (s *supervisor) merge() *explore.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	asm := explore.NewAssembler(s.opt.Program.Name(), s.opt.Explore)
	for _, u := range s.units {
		if u.state == unitDone {
			asm.Add(u.spec, u.result)
		} else {
			asm.AddLost(u.spec)
		}
	}
	reason := s.stopReason
	if reason == "" && len(s.poisoned) > 0 {
		reason = "poison"
	}
	res := asm.Finish(reason)
	res.Elapsed = time.Since(s.start) // the assembler only saw the merge
	res.Workers = s.opt.Explore.Workers
	res.Isolated = !s.degraded
	res.Degraded = s.degraded && !s.opt.InProcess
	baseRedeliveries, baseRestarts := 0, 0
	var priorPoison []explore.PoisonRecord
	if ck := s.opt.Explore.Resume; ck != nil && ck.Dispatch != nil {
		baseRedeliveries = ck.Dispatch.Redeliveries
		baseRestarts = ck.Dispatch.WorkerRestarts
		priorPoison = ck.Dispatch.Poison
	}
	res.Redeliveries = baseRedeliveries + s.redeliveries
	res.WorkerRestarts = baseRestarts + s.restarts
	for _, u := range s.poisoned {
		p := &explore.PoisonUnit{
			ID:         u.id,
			Kind:       u.spec.Kind(),
			Attempts:   u.attempts,
			LastError:  u.lastErr,
			ExitStatus: u.exitStatus,
			StderrTail: u.stderrTail,
		}
		if u.spec.Random != nil {
			p.Lo, p.Hi = u.spec.Random.Lo, u.spec.Random.Hi
		} else {
			p.Subtree = u.spec.MC.Subtree
			for _, te := range u.spec.MC.Trail {
				p.TrailPrefix = append(p.TrailPrefix, te.Val)
			}
		}
		res.PoisonUnits = append(res.PoisonUnits, p)
	}
	if res.Checkpoint != nil {
		d := &explore.DispatchCheckpoint{
			Redeliveries:   res.Redeliveries,
			WorkerRestarts: res.WorkerRestarts,
			Poison:         append([]explore.PoisonRecord(nil), priorPoison...),
		}
		for _, p := range res.PoisonUnits {
			d.Poison = append(d.Poison, explore.PoisonRecord{
				Kind: p.Kind, Subtree: p.Subtree, Lo: p.Lo, Hi: p.Hi,
				Attempts: p.Attempts, LastErr: p.LastError,
			})
		}
		res.Checkpoint.Dispatch = d
	}
	return res
}

// resolveWorkerBin finds the psan-worker binary: explicit option, the
// PSAN_WORKER_BIN environment override, a psan-worker sitting next to
// this executable, then $PATH. Empty means not found (degraded mode).
func resolveWorkerBin(explicit string) string {
	if explicit != "" {
		return explicit
	}
	if env := os.Getenv(WorkerBinEnv); env != "" {
		return env
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "psan-worker")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand
		}
	}
	if p, err := exec.LookPath("psan-worker"); err == nil {
		return p
	}
	return ""
}
