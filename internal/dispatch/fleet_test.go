package dispatch

// Fleet telemetry exactness: a supervised campaign's aggregated metric
// registry must equal the in-process run's, counter for counter, even
// when workers are SIGKILLed mid-unit and units are redelivered. The
// mechanism under test is the delta-shipping pipeline (worker snapshot
// diffs on heartbeats + final top-up on results) and the per-attempt
// rollback that un-applies a dead attempt's partial deltas.

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/persist"
)

// deterministicCounter reports whether a metric participates in the
// fleet-exactness contract. The contract covers every counter the
// exploration itself emits (explore.*, pmem.*, persist.*) and excludes
// the few that record engine-instance artifacts rather than canonical
// work: timing totals (_ns), snapshot reuse (an in-process engine can
// share snapshots across subtrees where isolated units cannot), and
// work stealing (scheduling, not exploration).
func deterministicCounter(name string) bool {
	switch {
	case strings.HasSuffix(name, "_ns"):
		return false
	case name == "explore.snapshots_taken", name == "explore.snapshots_restored":
		return false
	case name == "explore.steals", name == "explore.steal_failures":
		return false
	}
	return strings.HasPrefix(name, "explore.") ||
		strings.HasPrefix(name, "pmem.") ||
		strings.HasPrefix(name, "persist.")
}

// TestFleetMetricsExactness (kill chaos, 4 workers): every unit's first
// delivery is killed mid-unit; after redelivery and rollback the
// fleet-aggregated counters are identical to the uninterrupted
// in-process run's. The random case runs a bounded window so the
// pmem.* retirement counters are exercised; the model-check case
// disables snapshots so prefix replay work (and with it the persist.*
// op counts) is canonical rather than an artifact of which engine
// instance happened to hold a reusable snapshot.
func TestFleetMetricsExactness(t *testing.T) {
	cases := []struct {
		name  string
		prog  string
		opt   explore.Options
		chaos string
	}{
		{"random", "figure2",
			explore.Options{Mode: explore.Random, Executions: 200, Seed: 7, Model: persist.Config{Window: 4}},
			"kill-after=5"},
		{"mc", "figure7",
			explore.Options{Mode: explore.ModelCheck, Executions: 10000, DisableSnapshots: true},
			"kill-after=1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseReg := obs.NewRegistry()
			bopt := withWorkers(tc.opt, 1)
			bopt.Obs = &obs.Observer{Metrics: baseReg}
			base := explore.Run(testPrograms[tc.prog](), bopt)

			fleetReg := obs.NewRegistry()
			tr := obs.NewTracer()
			fr := obs.NewFlightRecorder(0)
			opt := supOptions(t, tc.prog, tc.opt, 4, tc.chaos)
			opt.UnitExecs = 25
			opt.Explore.Obs = &obs.Observer{Metrics: fleetReg, Tracer: tr, Flight: fr}
			res := Run(opt)
			sameResult(t, res, base)
			if res.Redeliveries < 1 {
				t.Fatalf("Redeliveries = %d, want >= 1 (chaos did not fire)", res.Redeliveries)
			}

			want := baseReg.Snapshot()
			got := fleetReg.Snapshot()
			names := map[string]bool{}
			for n := range want.Counters {
				if deterministicCounter(n) {
					names[n] = true
				}
			}
			for n := range got.Counters {
				if deterministicCounter(n) {
					names[n] = true
				}
			}
			if len(names) == 0 {
				t.Fatal("no deterministic counters recorded")
			}
			sorted := make([]string, 0, len(names))
			for n := range names {
				sorted = append(sorted, n)
			}
			sort.Strings(sorted)
			for _, n := range sorted {
				if got.Counters[n] != want.Counters[n] {
					t.Errorf("counter %s: fleet = %d, in-process = %d", n, got.Counters[n], want.Counters[n])
				}
			}

			// The comparison must not be vacuous: the run recorded real
			// exploration work, per-model backend ops, and (random case)
			// window retirements.
			if want.Counters["explore.executions_started"] == 0 {
				t.Error("in-process run recorded no explore.executions_started")
			}
			persistSeen := false
			for _, n := range sorted {
				if strings.HasPrefix(n, "persist.") && want.Counters[n] > 0 {
					persistSeen = true
					break
				}
			}
			if !persistSeen {
				t.Errorf("no nonzero persist.* counter recorded (counters: %v)", sorted)
			}
			if tc.opt.Model.Window > 0 && want.Counters["pmem.retirements"] == 0 {
				t.Error("windowed run recorded no pmem.retirements")
			}

			// Merged timeline: worker spans were rebased into the
			// supervisor's tracer, so the trace spans multiple processes.
			pids := map[int]bool{}
			for _, ev := range tr.Events() {
				pids[ev.Pid] = true
			}
			if len(pids) < 2 {
				t.Errorf("merged trace covers %d process(es), want >= 2 (pids: %v)", len(pids), pids)
			}

			// Flight recorder: the kill chaos produced redelivery events.
			redelivers := 0
			for _, ev := range fr.Events() {
				if ev.Name == "redeliver" {
					redelivers++
				}
			}
			if redelivers == 0 {
				t.Errorf("flight recorder holds no redeliver events (total %d)", fr.Total())
			}
		})
	}
}

// TestFleetMetricsExactnessCleanRun: without chaos the same contract
// holds (no rollback path involved), and the dispatch-side bookkeeping
// counters agree with the supervision record on the Result.
func TestFleetMetricsExactnessCleanRun(t *testing.T) {
	eopt := explore.Options{Mode: explore.Random, Executions: 120, Seed: 11}
	baseReg := obs.NewRegistry()
	bopt := withWorkers(eopt, 1)
	bopt.Obs = &obs.Observer{Metrics: baseReg}
	base := explore.Run(figure2(), bopt)

	fleetReg := obs.NewRegistry()
	opt := supOptions(t, "figure2", eopt, 4, "")
	opt.UnitExecs = 30
	opt.Explore.Obs = &obs.Observer{Metrics: fleetReg}
	res := Run(opt)
	sameResult(t, res, base)

	want, got := baseReg.Snapshot(), fleetReg.Snapshot()
	for n, w := range want.Counters {
		if !deterministicCounter(n) {
			continue
		}
		if got.Counters[n] != w {
			t.Errorf("counter %s: fleet = %d, in-process = %d", n, got.Counters[n], w)
		}
	}
	if got.Counters["dispatch.redeliveries"] != int64(res.Redeliveries) {
		t.Errorf("dispatch.redeliveries = %d, Result.Redeliveries = %d",
			got.Counters["dispatch.redeliveries"], res.Redeliveries)
	}
	if n := got.Counters["dispatch.units_merged"]; n == 0 {
		t.Error("dispatch.units_merged = 0, want > 0")
	}
}
