// Package repro is a from-scratch Go reproduction of "Checking
// Robustness to Weak Persistency Models" (Gorjiara, Luo, Lee, Xu,
// Demsky; PLDI 2022): the PSan robustness checker, the Px86 persistency
// simulator and exploration harness it runs on, the Figure 9 test
// language, and Go ports of the paper's benchmark suite.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for reproduced results. The
// root bench targets (go test -bench .) regenerate the paper's tables;
// cmd/psan, cmd/psan-litmus, and cmd/psan-bench are the entry points.
package repro
