package repro

// Integration tests over the shipped testdata programs: every .pm file
// is parsed, explored, and checked against the expected verdict; the
// non-robust ones are then run through the automated repair loop and
// must come out clean.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/repair"
)

// testdataPrograms maps each shipped program to its expected verdict
// and the exploration mode that decides it.
var testdataPrograms = []struct {
	file       string
	mode       explore.Mode
	executions int
	robust     bool
}{
	{"figure2.pm", explore.ModelCheck, 10000, false},
	{"figure2_fixed.pm", explore.ModelCheck, 10000, true},
	{"figure7.pm", explore.Random, 800, false},
	{"sameline.pm", explore.ModelCheck, 10000, true},
	{"counter.pm", explore.ModelCheck, 30000, false},
}

func loadProgram(t *testing.T, name string) *lang.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return prog
}

func TestTestdataVerdicts(t *testing.T) {
	for _, tc := range testdataPrograms {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			prog := loadProgram(t, tc.file)
			res := explore.Run(interp.New(tc.file, prog), explore.Options{
				Mode: tc.mode, Executions: tc.executions, Seed: 1,
			})
			if got := len(res.Violations) == 0; got != tc.robust {
				t.Fatalf("%s: robust=%v, want %v\nviolations: %v",
					tc.file, got, tc.robust, res.ViolationKeys())
			}
		})
	}
}

func TestTestdataRepairsToClean(t *testing.T) {
	for _, tc := range testdataPrograms {
		if tc.robust {
			continue
		}
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			prog := loadProgram(t, tc.file)
			res, err := repair.Loop(tc.file, prog, explore.Options{
				Mode: tc.mode, Executions: tc.executions, Seed: 1,
			}, 20)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Clean {
				t.Fatalf("%s not clean after %d rounds:\n%s",
					tc.file, res.Iterations, lang.Format(res.Program))
			}
			if len(res.Applied) == 0 {
				t.Fatalf("%s: no fixes applied", tc.file)
			}
			// The repaired source must mention flushes it inserted.
			if out := lang.Format(res.Program); !strings.Contains(out, "flushopt") {
				t.Fatalf("%s: repaired program has no inserted flush:\n%s", tc.file, out)
			}
		})
	}
}

// Every testdata file must be listed in the manifest, so new programs
// cannot be shipped untested.
func TestTestdataManifestComplete(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, tc := range testdataPrograms {
		listed[tc.file] = true
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".pm") {
			continue
		}
		if !listed[e.Name()] {
			t.Errorf("testdata/%s is not in the verdict manifest", e.Name())
		}
	}
}

// TestStressAllBenchmarksModelCheck gives every port a bounded
// model-checking pass on top of its random-mode runs — a soak that
// shakes out exploration bugs. Skipped in -short mode; PSAN_TEST_QUICK
// (the CI race run) cuts the execution budget.
func TestStressAllBenchmarksModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	execs := scaled(1500)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res := explore.Run(b.Build(bench.Buggy), explore.Options{
				Mode:       explore.ModelCheck,
				Executions: execs,
			})
			if res.Executions == 0 {
				t.Fatal("no executions ran")
			}
			// Model checking within its cap must never abort and the
			// fixed variant under the same budget must stay clean.
			if res.Aborted != 0 {
				t.Fatalf("%d aborted executions", res.Aborted)
			}
			clean := explore.Run(b.Build(bench.Fixed), explore.Options{
				Mode:       explore.ModelCheck,
				Executions: 1500,
			})
			if len(clean.Violations) != 0 {
				t.Fatalf("fixed variant reported under model checking: %v", clean.ViolationKeys())
			}
		})
	}
}
