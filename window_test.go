package repro

// Windowed-equivalence property suite: bounded-window (streaming)
// checking must be a pure memory optimization. A window forces the
// history-hashing reductions off (snapshots, DPOR, the post-crash state
// cache — their keys cover retired records), so every comparison here
// pins the baseline to the same reduction settings and then demands the
// windowed run be observationally identical: same violation key set,
// same execution counts, and the same heap digest in every execution.
//
// The suite covers the digest program on every registered persistency
// backend, the whole shipped .pm litmus corpus, and the paper's worked
// scenarios — with windows small enough that retirement actually runs
// on these short traces (and the tests assert that it did).

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/persist"
)

// unreducedOpts returns model-check options with every reduction a
// window would force off already disabled, so windowed and unbounded
// runs explore the identical schedule stream.
func unreducedOpts(model string, window, execs int) explore.Options {
	return explore.Options{
		Mode:             explore.ModelCheck,
		Executions:       execs,
		Workers:          1,
		Model:            persist.Config{Name: model, Window: window},
		DisableSnapshots: true,
		DisableDPOR:      true,
		NoStateCache:     true,
	}
}

// TestWindowEquivalenceAcrossModels: on every backend, a windowed
// model-check campaign of the digest program must match the unbounded
// campaign bit for bit — violation keys, execution counts, and the
// per-execution heap digests (every recovery-phase read folded into a
// hash). Window 4 is far below the program's trace length, so every
// execution runs multiple retirement sweeps.
func TestWindowEquivalenceAcrossModels(t *testing.T) {
	for _, model := range persist.Names() {
		model := model
		t.Run(model, func(t *testing.T) {
			run := func(window int) (*explore.Result, []uint64) {
				var digests []uint64
				var mu sync.Mutex
				res := explore.Run(digestProgram(&digests, &mu), unreducedOpts(model, window, 5000))
				return res, digests
			}
			bounded, bDigests := run(4)
			unbounded, uDigests := run(0)
			assertSameReducedOutcome(t, model, bounded, unbounded)
			if !reflect.DeepEqual(bDigests, uDigests) {
				t.Fatalf("%s: heap digests diverge (%d vs %d executions)\n  windowed:  %v\n  unbounded: %v",
					model, len(bDigests), len(uDigests), bDigests, uDigests)
			}
			if bounded.Retirements == 0 {
				t.Fatalf("%s: windowed campaign reports zero retirements — window machinery never engaged", model)
			}
			if unbounded.Retirements != 0 {
				t.Fatalf("%s: unbounded campaign reports %d retirements", model, unbounded.Retirements)
			}
		})
	}
}

// TestWindowEquivalenceOnLitmusPrograms: on every shipped .pm litmus
// program, the windowed search must report exactly the unbounded
// search's violation key set and execution count.
func TestWindowEquivalenceOnLitmusPrograms(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var retired int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pm") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lang.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			bounded := explore.Run(interp.New(name, prog), unreducedOpts("", 4, 20000))
			unbounded := explore.Run(interp.New(name, prog), unreducedOpts("", 0, 20000))
			assertSameReducedOutcome(t, name, bounded, unbounded)
			retired += bounded.Retirements
		})
	}
	if retired == 0 {
		t.Fatal("no litmus program triggered a retirement sweep — window machinery never engaged")
	}
}

// TestWindowedLitmusScenarioVerdicts: the paper's worked scenarios must
// keep their pinned verdicts under a bounded window on every backend.
func TestWindowedLitmusScenarioVerdicts(t *testing.T) {
	for _, model := range persist.Names() {
		for _, s := range litmus.Scenarios() {
			model, s := model, s
			t.Run(model+"/"+s.Name, func(t *testing.T) {
				cfg := persist.Config{Name: model, Window: 4}
				violations := s.RunModel(io.Discard, cfg)
				if got, want := len(violations) > 0, s.Expect(cfg); got != want {
					t.Fatalf("%s under %s window=4: violation=%v, want %v", s.Name, model, got, want)
				}
			})
		}
	}
}
