package repro

// Regression tests for the observability subsystem's disabled-mode
// contract (internal/obs): a campaign run without sinks — whether the
// observer is nil or merely empty — must be allocation-identical to
// one that predates the subsystem, so the PR 2 allocation-free hot
// path cannot silently regress behind a nil check.

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/obs"
)

// TestObservabilityDisabledAllocIdentity measures allocs/op of the
// same serial random campaign with Obs nil and with an empty Observer
// (the shape the CLIs pass when no telemetry flag is set): the counts
// must be byte-identical, proving every instrument resolved from the
// empty observer is a true no-op on the hot path.
func TestObservabilityDisabledAllocIdentity(t *testing.T) {
	if raceEnabled {
		t.Skip("-race instrumentation perturbs allocation counts; the identity is asserted in the uninstrumented tiers")
	}
	bm := benchmarks.ByName("CCEH")
	if bm == nil {
		t.Fatal("CCEH not registered")
	}
	empty := &obs.Observer{} // hoisted: the observer itself is campaign setup, not hot path
	measure := func(o *obs.Observer) int64 {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:       explore.Random,
					Executions: 20,
					Seed:       7,
					Workers:    1,
					Obs:        o,
				})
				if res.Executions != 20 {
					b.Fatalf("ran %d executions, want 20", res.Executions)
				}
			}
		})
		return r.AllocsPerOp()
	}
	off := measure(nil)
	disabled := measure(empty)
	if off != disabled {
		t.Fatalf("empty observer changes the hot path: %d allocs/op with Obs=nil, %d with empty observer",
			off, disabled)
	}
}

// TestObservabilityEnabledOutcomeIdentity asserts full instrumentation
// (registry + tracer + provenance) changes no campaign outcome: same
// executions, aborts, and violation keys as the uninstrumented run, in
// both modes. Telemetry observes; it must never steer.
func TestObservabilityEnabledOutcomeIdentity(t *testing.T) {
	execs := scaled(100)
	for _, mode := range []explore.Mode{explore.Random, explore.ModelCheck} {
		mode := mode
		for _, b := range benchmarks.All() {
			b := b
			t.Run(mode.String()+"/"+b.Name, func(t *testing.T) {
				opt := explore.Options{Mode: mode, Executions: execs, Seed: 11, Workers: 4}
				plain := explore.Run(b.Build(bench.Buggy), opt)
				opt.Obs = &obs.Observer{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer()}
				opt.Provenance = true
				instr := explore.Run(b.Build(bench.Buggy), opt)
				assertSameOutcome(t, b.Name, plain, instr)
			})
		}
	}
}
