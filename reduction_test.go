package repro

// Equivalence tests for the model-check reductions (prefix snapshots
// and crash-state DPOR):
//
//   - snapshots on vs off must be bit-identical — same violation keys,
//     same execution/abort/quarantine counts, and the same observable
//     heap in every execution (pinned by digesting every recovery-phase
//     read) — on every persistency-model backend;
//   - DPOR on vs off must report exactly the same violation key set on
//     every shipped litmus program, with DPOR never running more
//     executions than the unreduced search.
//
// Together with determinism_test.go (which now exercises both settings)
// these are the safety net that lets the reductions default to on.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/memmodel"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// assertSameReducedOutcome compares everything a reduction is not
// allowed to change.
func assertSameReducedOutcome(t *testing.T, label string, on, off *explore.Result) {
	t.Helper()
	if !reflect.DeepEqual(on.ViolationKeys(), off.ViolationKeys()) {
		t.Fatalf("%s: ViolationKeys differ\n  on:  %v\n  off: %v", label, on.ViolationKeys(), off.ViolationKeys())
	}
	if on.Executions != off.Executions {
		t.Fatalf("%s: Executions %d vs %d", label, on.Executions, off.Executions)
	}
	if on.ExecutionsToAllBugs != off.ExecutionsToAllBugs {
		t.Fatalf("%s: ExecutionsToAllBugs %d vs %d", label, on.ExecutionsToAllBugs, off.ExecutionsToAllBugs)
	}
	if on.Aborted != off.Aborted || on.Quarantined != off.Quarantined {
		t.Fatalf("%s: Aborted/Quarantined (%d/%d) vs (%d/%d)",
			label, on.Aborted, on.Quarantined, off.Aborted, off.Quarantined)
	}
}

// digestProgram is a two-phase program whose recovery phase digests
// every value it reads into the collector, so two runs can compare the
// exact heap state each execution observed. The phases touch several
// cache lines with deliberately missing flushes, giving the search real
// branching on every backend.
func digestProgram(digests *[]uint64, mu *sync.Mutex) explore.Program {
	words := []memmodel.Addr{0x2000, 0x2008, 0x2040, 0x3000, 0x3040}
	return &explore.FuncProgram{
		ProgName: "digest",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(words[0], 1, "x=1")
				th.Store(words[1], 2, "y=2") // same line as x, no flush
				th.Flush(words[0], "flush x")
				th.SFence("fence")
				th.Store(words[2], 3, "z=3") // own line, no flush
				th.Store(words[3], 4, "c=4")
				th.Flush(words[3], "flush c")
				th.Store(words[4], 5, "d=5")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				var h uint64 = 14695981039346656037
				for _, a := range words {
					v := th.Load(a, "recovery read")
					h = (h ^ uint64(v)) * 1099511628211
				}
				mu.Lock()
				*digests = append(*digests, h)
				mu.Unlock()
			},
		},
	}
}

// TestSnapshotEquivalenceAcrossModels: DisableSnapshots must not change
// any observable part of a model-check campaign on any backend — and in
// particular every execution must read the same heap whether it was
// replayed from the program start or resumed from a restored crash
// snapshot.
func TestSnapshotEquivalenceAcrossModels(t *testing.T) {
	for _, model := range persist.Names() {
		model := model
		t.Run(model, func(t *testing.T) {
			run := func(disable bool) (*explore.Result, []uint64) {
				var digests []uint64
				var mu sync.Mutex
				res := explore.Run(digestProgram(&digests, &mu), explore.Options{
					Mode: explore.ModelCheck, Executions: 5000, Workers: 1,
					Model:            persist.Config{Name: model},
					DisableSnapshots: disable,
				})
				return res, digests
			}
			on, onDigests := run(false)
			off, offDigests := run(true)
			assertSameReducedOutcome(t, model, on, off)
			// Workers:1 collects executions in canonical order, so the
			// digest streams must match element for element.
			if !reflect.DeepEqual(onDigests, offDigests) {
				t.Fatalf("%s: heap digests diverge (%d vs %d executions)\n  on:  %v\n  off: %v",
					model, len(onDigests), len(offDigests), onDigests, offDigests)
			}
			if off.SnapshotRestores != 0 {
				t.Fatalf("%s: disabled run reports %d snapshot restores", model, off.SnapshotRestores)
			}
		})
	}
}

// TestSnapshotEquivalenceOnBenchmarks runs the same A/B on the real
// benchmark ports at both worker counts the determinism suite pins.
func TestSnapshotEquivalenceOnBenchmarks(t *testing.T) {
	execs := scaled(400)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				opt := explore.Options{Mode: explore.ModelCheck, Executions: execs, Workers: workers}
				on := explore.Run(b.Build(bench.Buggy), opt)
				opt.DisableSnapshots = true
				off := explore.Run(b.Build(bench.Buggy), opt)
				assertSameReducedOutcome(t, b.Name, on, off)
			}
		})
	}
}

// TestDPORSoundOnLitmusPrograms: on every shipped .pm litmus program,
// the DPOR-reduced search must report exactly the violation key set the
// unreduced search reports, while never running more executions.
func TestDPORSoundOnLitmusPrograms(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pm") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lang.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			opt := explore.Options{Mode: explore.ModelCheck, Executions: 20000}
			on := explore.Run(interp.New(name, prog), opt)
			opt.DisableDPOR = true
			off := explore.Run(interp.New(name, prog), opt)
			if !reflect.DeepEqual(on.ViolationKeys(), off.ViolationKeys()) {
				t.Fatalf("DPOR changed the violation set\n  on:  %v\n  off: %v",
					on.ViolationKeys(), off.ViolationKeys())
			}
			if on.Executions > off.Executions {
				t.Fatalf("DPOR ran more executions than the unreduced search: %d > %d",
					on.Executions, off.Executions)
			}
			if off.DPORPruned != 0 {
				t.Fatalf("disabled run reports %d DPOR prunes", off.DPORPruned)
			}
		})
	}
}

// TestDPORSoundOnBenchmarks: same exact-set property on the benchmark
// ports, where the searches are budget-capped. Under a binding cap the
// reduced search advances further through the decision tree, so — like
// the state-cache soundness test — the invariant is one-sided: nothing
// the unreduced run found may be lost.
func TestDPORSoundOnBenchmarks(t *testing.T) {
	execs := scaled(400)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			on := explore.Run(b.Build(bench.Buggy), explore.Options{
				Mode: explore.ModelCheck, Executions: execs, Workers: 1,
			})
			off := explore.Run(b.Build(bench.Buggy), explore.Options{
				Mode: explore.ModelCheck, Executions: execs, Workers: 1, DisableDPOR: true,
			})
			have := make(map[string]bool)
			for _, k := range on.ViolationKeys() {
				have[k] = true
			}
			for _, k := range off.ViolationKeys() {
				if !have[k] {
					t.Fatalf("DPOR lost violation %s\n  on:  %v\n  off: %v",
						k, on.ViolationKeys(), off.ViolationKeys())
				}
			}
		})
	}
}
