package repro

// Regression tests for the allocation-free hot path: per-worker World
// reuse (World.Reset) must be observationally identical to building a
// fresh World per execution, and the trace's location interner must
// round-trip every label.

import (
	"reflect"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/trace"
)

// TestWorldReuseMatchesFreshWorlds: for every registered benchmark and
// both exploration modes, the default reused-World engine produces the
// same Result as one forced to build a fresh World per execution. This
// is the oracle for Machine.Reset, Trace.Reset, Checker.Reset, and
// Heap.Reset: any state leaking across executions shows up as a
// violation-key, execution-count, or abort-count difference.
func TestWorldReuseMatchesFreshWorlds(t *testing.T) {
	execs := scaled(100)
	for _, mode := range []explore.Mode{explore.Random, explore.ModelCheck} {
		mode := mode
		for _, b := range benchmarks.All() {
			b := b
			t.Run(mode.String()+"/"+b.Name, func(t *testing.T) {
				opt := explore.Options{Mode: mode, Executions: execs, Seed: 11, Workers: 1}
				reused := explore.Run(b.Build(bench.Buggy), opt)
				opt.FreshWorlds = true
				fresh := explore.Run(b.Build(bench.Buggy), opt)
				assertSameOutcome(t, b.Name, reused, fresh)
				// Violation reports must match in full, not just by key:
				// frozen store copies, fixes, and intervals are part of
				// the user-visible output.
				if len(reused.Violations) == len(fresh.Violations) {
					for i := range reused.Violations {
						if reused.Violations[i].String() != fresh.Violations[i].String() {
							t.Fatalf("violation %d renders differently:\nreused: %s\nfresh:  %s",
								i, reused.Violations[i], fresh.Violations[i])
						}
					}
				}
			})
		}
	}
}

// TestWorldReuseMatchesFreshWorldsParallel covers the per-worker reuse
// path of the parallel random engine.
func TestWorldReuseMatchesFreshWorldsParallel(t *testing.T) {
	execs := scaled(100)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opt := explore.Options{Mode: explore.Random, Executions: execs, Seed: 11, Workers: 8}
			reused := explore.Run(b.Build(bench.Buggy), opt)
			opt.FreshWorlds = true
			fresh := explore.Run(b.Build(bench.Buggy), opt)
			assertSameOutcome(t, b.Name, reused, fresh)
		})
	}
}

// TestInternerRoundTrip: interning is idempotent and Str inverts Intern,
// including across a Trace.Reset (the intern table deliberately
// survives resets so LocIDs stay stable for a reused world).
func TestInternerRoundTrip(t *testing.T) {
	tr := trace.New()
	labels := []string{"", "x=1", "flush x", "r1=x @fig2.pm:3", "x=1"}
	ids := make([]trace.LocID, len(labels))
	for i, s := range labels {
		ids[i] = tr.Intern(s)
		if got := tr.LocString(ids[i]); got != s {
			t.Fatalf("LocString(Intern(%q)) = %q", s, got)
		}
	}
	if ids[0] != trace.NoLoc {
		t.Fatalf("Intern(\"\") = %d, want NoLoc", ids[0])
	}
	if ids[1] != ids[4] {
		t.Fatalf("re-interning %q gave %d, want %d", labels[4], ids[4], ids[1])
	}
	if ids[1] == ids[2] || ids[2] == ids[3] {
		t.Fatal("distinct labels must get distinct ids")
	}
	before := append([]trace.LocID(nil), ids...)
	tr.Reset()
	for i, s := range labels {
		if got := tr.Intern(s); got != before[i] {
			t.Fatalf("after Reset, Intern(%q) = %d, want stable id %d", s, got, before[i])
		}
	}
	if !reflect.DeepEqual(ids, before) {
		t.Fatal("ids mutated")
	}
}
