// psan-worker is the isolated execution half of psan's -isolate mode:
// the dispatch supervisor spawns one psan-worker process per worker
// slot and feeds it work units (model-check subtrees, random-mode index
// ranges) over stdin, reading heartbeats, classifications, and unit
// results back over stdout. It takes no flags — everything it needs
// arrives in the hello message — and it holds no campaign state: losing
// a psan-worker to a SIGKILL, an OOM kill, or a panic loses exactly the
// one unit it was running.
package main

import (
	"fmt"
	"os"

	"repro/internal/dispatch"
	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/lang"
)

func main() {
	os.Exit(dispatch.WorkerMain(os.Stdin, os.Stdout, os.Stderr, compile))
}

// compile loads the program the supervisor named: the source file at
// path, compiled exactly as cmd/psan compiles it, so both sides agree
// on the program name the unit cut validates.
func compile(name, path string) (explore.Program, error) {
	if path == "" {
		return nil, fmt.Errorf("no program path for %q", name)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return interp.New(path, prog), nil
}
