package main

// End-to-end tests for the observability flags: -trace-out must emit
// trace files the validator accepts, -metrics-addr must bring up the
// endpoint, -progress must tick, and every reported violation must
// carry its provenance narrative.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/validate"
)

func TestCLITraceOutWritesValidTraces(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	code, out, errOut := cli(t, "-mode", "mc", "-trace-out", tracePath, "../../testdata/figure2.pm")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	chrome, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer chrome.Close()
	cs, err := validate.Chrome(chrome)
	if err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if cs.Spans == 0 || cs.Timeline < 2 {
		t.Fatalf("trace too thin: %+v (want spans on the campaign and worker timelines)", cs)
	}
	jsonl, err := os.Open(tracePath + ".jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer jsonl.Close()
	js, err := validate.JSONL(jsonl)
	if err != nil {
		t.Fatalf("jsonl trace invalid: %v", err)
	}
	if js.Spans != cs.Spans {
		t.Fatalf("span count diverges: chrome %d, jsonl %d", cs.Spans, js.Spans)
	}
}

func TestCLIViolationProvenance(t *testing.T) {
	code, out, _ := cli(t, "-mode", "mc", "../../testdata/figure2.pm")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	violations := strings.Count(out, "\n[")
	narratives := strings.Count(out, "provenance (")
	if violations == 0 || narratives != violations {
		t.Fatalf("%d violations but %d provenance narratives:\n%s", violations, narratives, out)
	}
	for _, want := range []string{"the racing store", "power failure ends sub-execution"} {
		if !strings.Contains(out, want) {
			t.Fatalf("narrative missing %q:\n%s", want, out)
		}
	}
}

func TestCLIMetricsAddrAndProgress(t *testing.T) {
	code, _, errOut := cli(t,
		"-mode", "random", "-execs", "50", "-workers", "2",
		"-metrics-addr", "127.0.0.1:0", "-progress", "1ns",
		"../../testdata/figure2.pm")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "metrics at http://127.0.0.1:") {
		t.Fatalf("metrics endpoint notice missing:\n%s", errOut)
	}
	if !strings.Contains(errOut, "progress:") {
		t.Fatalf("no progress tick on stderr:\n%s", errOut)
	}
}
