// Command psan checks a persistent-memory test program (written in the
// paper's Figure 9 language, see internal/lang) for robustness
// violations, exploring crash points and post-crash reads either
// randomly or exhaustively:
//
//	psan [-mode random|mc] [-execs N] [-seed S] [-workers W] [-dump] program.pm
//	psan -fix program.pm       # apply the suggested fixes, print the
//	                           # repaired program
//	psan -trace program.pm     # dump one execution's event trace
//
// Exit status is 1 when violations are found (or -fix could not reach a
// clean program), 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/pmem"
	"repro/internal/repair"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "mc", "exploration mode: mc (model checking) or random")
	execs := fs.Int("execs", 10000, "execution budget (exact count in random mode, cap in mc mode)")
	seed := fs.Int64("seed", 1, "random-mode seed")
	workers := fs.Int("workers", 0, "parallel exploration workers (0: all CPUs, 1: serial); results are identical for any count")
	dump := fs.Bool("dump", false, "print the parsed program structure")
	fix := fs.Bool("fix", false, "apply PSan's suggested fixes until the program is clean and print it")
	dumpTrace := fs.Bool("trace", false, "dump one crash-free execution's event trace and exit")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: psan [flags] program.pm\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "psan: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface only live allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "psan: %v\n", err)
			}
		}()
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "psan: %v\n", err)
		return 2
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "psan: %s: %v\n", fs.Arg(0), err)
		return 2
	}
	if *dump {
		fmt.Fprint(stdout, prog)
	}
	compiled := interp.New(fs.Arg(0), prog)
	opts := explore.Options{Executions: *execs, Seed: *seed, Workers: *workers}
	switch *mode {
	case "mc":
		opts.Mode = explore.ModelCheck
	case "random":
		opts.Mode = explore.Random
	default:
		fmt.Fprintf(stderr, "psan: unknown mode %q\n", *mode)
		return 2
	}
	if *dumpTrace {
		w := pmem.NewWorld(pmem.Config{CrashTarget: -1, Seed: *seed})
		for i, phase := range compiled.Phases() {
			w.SetCrashTarget(-1)
			w.RunPhase(phase)
			if i < len(compiled.Phases())-1 {
				w.Crash()
			}
		}
		w.M.Trace().Dump(stdout)
		fmt.Fprintln(stdout, w.M.Trace().Stats())
		return 0
	}
	if *fix {
		result, err := repair.Loop(fs.Arg(0), prog, opts, 20)
		if err != nil {
			fmt.Fprintf(stderr, "psan: %v\n", err)
			return 2
		}
		for _, a := range result.Applied {
			fmt.Fprintf(stdout, "// %s\n", a)
		}
		fmt.Fprint(stdout, lang.Format(result.Program))
		if !result.Clean {
			fmt.Fprintln(stderr, "psan: program still reports violations after repair")
			return 1
		}
		return 0
	}
	res := explore.Run(compiled, opts)
	fmt.Fprintln(stdout, res)
	for i, v := range res.Violations {
		fmt.Fprintf(stdout, "\n[%d] %s", i+1, v)
	}
	if len(res.Violations) > 0 {
		return 1
	}
	fmt.Fprintln(stdout, "no robustness violations found")
	return 0
}
