// Command psan checks a persistent-memory test program (written in the
// paper's Figure 9 language, see internal/lang) for robustness
// violations, exploring crash points and post-crash reads either
// randomly or exhaustively:
//
//	psan [-mode random|mc] [-execs N] [-seed S] [-workers W] [-model M] [-dump] program.pm
//	psan -deadline 30s -checkpoint run.ckpt program.pm   # bounded campaign
//	psan -resume run.ckpt program.pm                     # continue it
//	psan -isolate -workers 4 program.pm                  # fault-tolerant
//	                           # campaign in worker OS processes (see
//	                           # -lease, -retries; needs psan-worker)
//	psan -fix program.pm       # apply the suggested fixes, print the
//	                           # repaired program
//	psan -trace program.pm     # dump one execution's event trace
//
// A campaign bounded by -deadline or -max-execs (or interrupted with
// ^C) degrades gracefully: it reports the violations found so far plus
// coverage statistics, and -checkpoint saves its resume state.
//
// Exit status:
//
//	0  the program is robust (no violations; exploration completed)
//	1  robustness violations found (or -fix could not reach a clean
//	   program) — reported even from a partial run
//	2  usage, parse, or internal error
//	3  partial run: a deadline, budget, or interrupt stopped
//	   exploration before the frontier was exhausted, and no
//	   violations were found in the explored prefix
//	4  isolation trouble (-isolate only): work units were quarantined
//	   as poison after exhausting their retry budget, or the campaign
//	   degraded to in-process execution because worker processes could
//	   not be spawned — no violations found, but the run's coverage or
//	   isolation guarantee was compromised (violations still exit 1)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/repair"
	"repro/internal/report"
)

// Exit codes (see the package comment).
const (
	exitRobust     = 0
	exitViolations = 1
	exitInternal   = 2
	exitPartial    = 3
	exitDegraded   = 4
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	return runCtx(context.Background(), args, stdout, stderr)
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "mc", "exploration mode: mc (model checking) or random")
	var execs int
	fs.IntVar(&execs, "execs", 10000, "execution budget (exact count in random mode, cap in mc mode)")
	fs.IntVar(&execs, "max-execs", 10000, "alias for -execs")
	seed := fs.Int64("seed", 1, "random-mode seed")
	workers := fs.Int("workers", 0, "parallel exploration workers (0: all CPUs, 1: serial); results are identical for any count")
	steal := fs.Bool("steal", true, "work stealing between mc-mode workers; -steal=false pins each crash-target subtree to one worker (timing A/B and debugging; results are identical either way)")
	deadline := fs.Duration("deadline", 0, "wall-clock budget for the exploration; on expiry report partial results (exit 3)")
	stepTimeout := fs.Duration("step-timeout", 0, "per-execution wall-clock bound; a stuck execution is aborted, not the run")
	checkpointPath := fs.String("checkpoint", "", "write resume state to this file when the run stops early")
	resumePath := fs.String("resume", "", "resume a checkpointed campaign from this file")
	dump := fs.Bool("dump", false, "print the parsed program structure")
	fix := fs.Bool("fix", false, "apply PSan's suggested fixes until the program is clean and print it")
	dumpTrace := fs.Bool("trace", false, "dump one crash-free execution's event trace and exit")
	model := fs.String("model", "", "persistency-model backend: "+strings.Join(persist.Names(), ", "))
	window := fs.Int("window", 0, "bounded trace window: retire trace history every N operations, keeping memory flat on long executions (0: unbounded; forces -reduction none and -state-cache=false; verdicts are identical either way)")
	stateCache := fs.Bool("state-cache", true, "post-crash state cache in mc mode; -state-cache=false re-explores cached subtrees (A/B timing and debugging)")
	reduction := fs.String("reduction", "all", "model-check reductions: all, snapshots, dpor, or none (A/B timing and debugging; results carry the same violations either way)")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	metricsAddr := fs.String("metrics-addr", "", "serve campaign metrics over HTTP on this address (/metrics OpenMetrics text, /metrics.json JSON snapshot, /debug/vars expvar)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event timeline to this file (plus <file>.jsonl) on exit; with -isolate the timeline merges every worker process's spans")
	flightOut := fs.String("flight-out", "", "write the campaign flight record (JSONL ring of steals, redeliveries, quarantines, stop transitions) to this file on exit; recording is always on under -isolate and the ring is dumped to stderr on poison, quarantined executions, or SIGQUIT")
	progress := fs.Duration("progress", 0, "print live campaign progress to stderr at this interval (0: off)")
	isolate := fs.Bool("isolate", false, "run work units in isolated psan-worker OS processes: a worker crash, hang, or kill loses one unit, not the campaign (results identical to in-process runs)")
	lease := fs.Duration("lease", 10*time.Second, "with -isolate: heartbeat deadline per delivered unit; a silent worker is killed and its unit redelivered")
	retries := fs.Int("retries", 3, "with -isolate: redeliveries per failed unit before it is quarantined as poison (0: none)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: psan [flags] program.pm\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "psan: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface only live allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "psan: %v\n", err)
			}
		}()
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "psan: %v\n", err)
		return 2
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "psan: %s: %v\n", fs.Arg(0), err)
		return 2
	}
	if *dump {
		fmt.Fprint(stdout, prog)
	}
	compiled := interp.New(fs.Arg(0), prog)
	if *window < 0 {
		fmt.Fprintf(stderr, "psan: -window must be >= 0\n")
		return exitInternal
	}
	modelCfg := persist.Config{Name: *model, Window: *window}
	if _, err := persist.New(modelCfg); err != nil {
		fmt.Fprintf(stderr, "psan: %v\n", err)
		return exitInternal
	}
	// Observability sinks: a metrics registry when anything will read it
	// (-metrics-addr, -progress), a tracer for -trace-out, a flight
	// recorder for -flight-out and for every -isolate campaign (its
	// ring is the post-mortem for redeliveries and quarantines). With
	// none of these the observer stays nil and the exploration hot path
	// runs instrumentation-free.
	var observer *obs.Observer
	var tracer *obs.Tracer
	var flight *obs.FlightRecorder
	needMetrics := *metricsAddr != "" || *progress > 0
	needFlight := *flightOut != "" || *isolate
	if needMetrics || *traceOut != "" || needFlight {
		observer = &obs.Observer{}
		if needMetrics {
			observer.Metrics = obs.NewRegistry()
		}
		if *traceOut != "" {
			tracer = obs.NewTracer()
			tracer.NameThread(0, "campaign")
			observer.Tracer = tracer
		}
		if needFlight {
			flight = obs.NewFlightRecorder(0)
			flight.SetPid(os.Getpid())
			observer.Flight = flight
		}
	}
	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(*metricsAddr, observer.Metrics)
		if err != nil {
			fmt.Fprintf(stderr, "psan: -metrics-addr: %v\n", err)
			return exitInternal
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "psan: metrics at http://%s/metrics (also /metrics.json, /debug/vars)\n", srv.Addr)
	}
	if flight != nil {
		// SIGQUIT dumps the flight ring to stderr and keeps running, the
		// post-mortem a wedged campaign wants (^\ at the terminal).
		sigq := make(chan os.Signal, 1)
		signal.Notify(sigq, syscall.SIGQUIT)
		defer signal.Stop(sigq)
		go func() {
			for range sigq {
				fmt.Fprintf(stderr, "psan: flight record (%d events):\n", flight.Total())
				flight.WriteJSONL(stderr)
			}
		}()
	}
	disableSnaps, disableDPOR, err := explore.ParseReduction(*reduction)
	if err != nil {
		fmt.Fprintf(stderr, "psan: -reduction: %v\n", err)
		return exitInternal
	}
	opts := explore.Options{
		Executions:       execs,
		Seed:             *seed,
		Workers:          *workers,
		Context:          ctx,
		Deadline:         *deadline,
		StepTimeout:      *stepTimeout,
		Model:            modelCfg,
		Obs:              observer,
		Provenance:       true,
		DisableSnapshots: disableSnaps,
		DisableDPOR:      disableDPOR,
		NoStateCache:     !*stateCache,
		DisableStealing:  !*steal,
	}
	switch *mode {
	case "mc":
		opts.Mode = explore.ModelCheck
	case "random":
		opts.Mode = explore.Random
	default:
		fmt.Fprintf(stderr, "psan: unknown mode %q\n", *mode)
		return exitInternal
	}
	if *resumePath != "" {
		ck, err := explore.LoadCheckpoint(*resumePath)
		if err != nil {
			fmt.Fprintf(stderr, "psan: %v\n", err)
			return exitInternal
		}
		if err := ck.Validate(compiled.Name(), opts); err != nil {
			fmt.Fprintf(stderr, "psan: -resume: %v\n", err)
			return exitInternal
		}
		opts.Resume = ck
	}
	if *dumpTrace {
		w := pmem.NewWorld(pmem.Config{CrashTarget: -1, Seed: *seed, Model: modelCfg})
		for i, phase := range compiled.Phases() {
			w.SetCrashTarget(-1)
			w.RunPhase(phase)
			if i < len(compiled.Phases())-1 {
				w.Crash()
			}
		}
		w.M.Trace().Dump(stdout)
		fmt.Fprintln(stdout, w.M.Trace().Stats())
		return 0
	}
	if *fix {
		result, err := repair.Loop(fs.Arg(0), prog, opts, 20)
		if err != nil {
			fmt.Fprintf(stderr, "psan: %v\n", err)
			return 2
		}
		for _, a := range result.Applied {
			fmt.Fprintf(stdout, "// %s\n", a)
		}
		fmt.Fprint(stdout, lang.Format(result.Program))
		if !result.Clean {
			fmt.Fprintln(stderr, "psan: program still reports violations after repair")
			return 1
		}
		return 0
	}
	var stopProgress func()
	if *progress > 0 {
		total := int64(0)
		if opts.Mode == explore.Random {
			total = int64(execs)
		}
		stopProgress = obs.StartProgress(obs.ProgressConfig{
			Out: stderr, Registry: observer.Metrics, Interval: *progress, Total: total,
		})
	}
	campStart := tracer.Now()
	var res *explore.Result
	if *isolate {
		retry := dispatch.RetryPolicy{Retries: *retries, Seed: *seed}
		if *retries <= 0 {
			retry.Retries = -1 // flag 0 means "no redeliveries", not the policy default
		}
		res = dispatch.Run(dispatch.Options{
			Explore:     opts,
			Program:     compiled,
			ProgramPath: fs.Arg(0),
			Lease:       *lease,
			Retry:       retry,
		})
	} else {
		res = explore.Run(compiled, opts)
	}
	tracer.CompleteSince(0, "campaign", "campaign", campStart, -1)
	if stopProgress != nil {
		stopProgress()
	}
	fmt.Fprint(stdout, report.RunSummary(res))
	for i, v := range res.Violations {
		fmt.Fprintf(stdout, "\n[%d] %s\n", i+1, v)
		fmt.Fprint(stdout, v.Prov.Narrative())
	}
	if res.Partial && *checkpointPath != "" {
		if res.Checkpoint == nil {
			fmt.Fprintln(stderr, "psan: no resumable checkpoint for this stop (re-run with a larger budget)")
		} else {
			cs := tracer.Now()
			err := res.Checkpoint.Save(*checkpointPath)
			tracer.CompleteSince(0, "campaign", "checkpoint-write", cs, -1)
			if err != nil {
				fmt.Fprintf(stderr, "psan: %v\n", err)
				return exitInternal
			}
			fmt.Fprintf(stdout, "checkpoint written to %s\n", *checkpointPath)
		}
	}
	if *traceOut != "" {
		if err := tracer.WriteFiles(*traceOut); err != nil {
			fmt.Fprintf(stderr, "psan: -trace-out: %v\n", err)
			return exitInternal
		}
	}
	if flight != nil {
		if *flightOut != "" {
			if err := flight.DumpFile(*flightOut); err != nil {
				fmt.Fprintf(stderr, "psan: -flight-out: %v\n", err)
				return exitInternal
			}
			fmt.Fprintf(stderr, "psan: flight record written to %s\n", *flightOut)
		} else if len(res.PoisonUnits) > 0 || len(res.ExecErrors) > 0 {
			// Something went wrong and nobody asked for a file: dump the
			// ring to stderr so the post-mortem is in the logs.
			fmt.Fprintf(stderr, "psan: flight record (%d events):\n", flight.Total())
			flight.WriteJSONL(stderr)
		}
	}
	if len(res.Violations) > 0 {
		return exitViolations
	}
	if !res.Partial {
		fmt.Fprintln(stdout, "no robustness violations found")
	}
	if len(res.PoisonUnits) > 0 || res.Degraded {
		return exitDegraded
	}
	if res.Partial {
		return exitPartial
	}
	return exitRobust
}
