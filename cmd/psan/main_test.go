package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// cli runs the command with args, returning exit code and both streams.
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCLIFindsFigure2(t *testing.T) {
	code, out, _ := cli(t, "-mode", "mc", "../../testdata/figure2.pm")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (violations found)\n%s", code, out)
	}
	for _, want := range []string{"robustness violation", "missing flush", "fix: insert flush+drain"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICleanProgram(t *testing.T) {
	code, out, _ := cli(t, "-mode", "mc", "../../testdata/figure2_fixed.pm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "no robustness violations found") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCLIFix(t *testing.T) {
	code, out, errOut := cli(t, "-fix", "-mode", "mc", "../../testdata/figure2.pm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "flushopt x;") || !strings.Contains(out, "sfence;") {
		t.Fatalf("repaired program missing flushes:\n%s", out)
	}
	if !strings.Contains(out, "// inserted") {
		t.Fatalf("fix log missing:\n%s", out)
	}
}

func TestCLITrace(t *testing.T) {
	code, out, _ := cli(t, "-trace", "../../testdata/figure2.pm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, want := range []string{"sub-execution e1", "crash C1", "events:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestCLIRandomMode(t *testing.T) {
	code, out, _ := cli(t, "-mode", "random", "-execs", "300", "-seed", "5", "../../testdata/figure7.pm")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "x = 1") {
		t.Fatalf("Figure 7 bug not localized:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if code, _, _ := cli(t); code != 2 {
		t.Fatal("missing file must exit 2")
	}
	if code, _, errOut := cli(t, "nonexistent.pm"); code != 2 || !strings.Contains(errOut, "psan:") {
		t.Fatalf("unreadable file must exit 2: %d %q", code, errOut)
	}
	if code, _, _ := cli(t, "-mode", "bogus", "../../testdata/figure2.pm"); code != 2 {
		t.Fatal("bad mode must exit 2")
	}
}

func TestCLIDeadlinePartial(t *testing.T) {
	// A 1ns deadline is observed before any execution is claimed, so the
	// run is deterministically empty and partial: exit 3.
	code, out, _ := cli(t, "-mode", "mc", "-deadline", "1ns", "../../testdata/figure2.pm")
	if code != exitPartial {
		t.Fatalf("exit = %d, want %d (partial)\n%s", code, exitPartial, out)
	}
	for _, want := range []string{"PARTIAL: deadline", "partial coverage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	code, out, errOut := cli(t, "-mode", "random", "-execs", "200", "-seed", "5",
		"-deadline", "1ns", "-checkpoint", ckpt, "../../testdata/figure7.pm")
	if code != exitPartial {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitPartial, out, errOut)
	}
	if !strings.Contains(out, "checkpoint written") {
		t.Fatalf("checkpoint not written:\n%s\n%s", out, errOut)
	}
	// Resuming with no deadline completes the campaign and finds the
	// figure7 bug (same outcome as TestCLIRandomMode's full run).
	code, out, errOut = cli(t, "-mode", "random", "-execs", "200", "-seed", "5",
		"-resume", ckpt, "../../testdata/figure7.pm")
	if code != exitViolations {
		t.Fatalf("resumed exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitViolations, out, errOut)
	}
	if !strings.Contains(out, "x = 1") {
		t.Fatalf("resumed run did not localize the figure7 bug:\n%s", out)
	}
	// A checkpoint for the wrong program is rejected before exploring.
	code, _, errOut = cli(t, "-mode", "random", "-execs", "200", "-seed", "5",
		"-resume", ckpt, "../../testdata/figure2.pm")
	if code != exitInternal || !strings.Contains(errOut, "-resume") {
		t.Fatalf("mismatched resume must exit %d: %d %q", exitInternal, code, errOut)
	}
}

func TestCLIMaxExecsAlias(t *testing.T) {
	code, out, _ := cli(t, "-mode", "random", "-max-execs", "300", "-seed", "5", "../../testdata/figure7.pm")
	if code != exitViolations {
		t.Fatalf("exit = %d, want %d\n%s", code, exitViolations, out)
	}
	if !strings.Contains(out, "300 executions") {
		t.Fatalf("-max-execs did not bound the run:\n%s", out)
	}
}

func TestCLIDump(t *testing.T) {
	code, out, _ := cli(t, "-dump", "-mode", "mc", "../../testdata/sameline.pm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "sameline x y;") {
		t.Fatalf("dump missing structure:\n%s", out)
	}
}

func TestCLIModelFlag(t *testing.T) {
	// Under strict persistency no stale post-crash read is reachable, so
	// even the buggy figure2 program is robust.
	code, out, _ := cli(t, "-mode", "mc", "-model", "strict", "../../testdata/figure2.pm")
	if code != 0 {
		t.Fatalf("strict exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "no robustness violations found") {
		t.Fatalf("strict output:\n%s", out)
	}
	// ptsosyn is observationally equivalent to px86: same verdict.
	code, out, _ = cli(t, "-mode", "mc", "-model", "ptsosyn", "../../testdata/figure2.pm")
	if code != 1 {
		t.Fatalf("ptsosyn exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "robustness violation") {
		t.Fatalf("ptsosyn output:\n%s", out)
	}
	// An unknown backend is rejected up front, naming the registered ones.
	code, _, errOut := cli(t, "-model", "epoch-nvm", "../../testdata/figure2.pm")
	if code != 2 || !strings.Contains(errOut, "px86") {
		t.Fatalf("unknown model: exit %d, stderr %q", code, errOut)
	}
}

func TestCLICheckpointModelMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	code, out, errOut := cli(t, "-mode", "random", "-execs", "200", "-seed", "5",
		"-deadline", "1ns", "-checkpoint", ckpt, "../../testdata/figure7.pm")
	if code != exitPartial {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitPartial, out, errOut)
	}
	// Verdicts are model-relative: a checkpoint taken under px86 must be
	// rejected when resumed under another backend.
	code, _, errOut = cli(t, "-mode", "random", "-execs", "200", "-seed", "5",
		"-resume", ckpt, "-model", "strict", "../../testdata/figure7.pm")
	if code != exitInternal || !strings.Contains(errOut, "model") {
		t.Fatalf("mismatched model resume must exit %d naming the model: %d %q",
			exitInternal, code, errOut)
	}
}

// buildWorker compiles psan-worker for the -isolate tests.
func buildWorker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "psan-worker")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/psan-worker")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build psan-worker: %v\n%s", err, out)
	}
	return bin
}

var elapsedRe = regexp.MustCompile(`, [^,]* total`)

// normalize strips the nondeterministic parts of a run summary: elapsed
// time and the scheduling-diagnostic lines (work stealing, redelivery
// tallies) that the determinism contract explicitly excludes.
func normalize(s string) string {
	var keep []string
	for _, line := range strings.Split(elapsedRe.ReplaceAllString(s, ""), "\n") {
		if strings.HasPrefix(line, "work stealing:") || strings.HasPrefix(line, "process isolation:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestCLIIsolate runs a campaign in worker processes and asserts the
// report is byte-identical (modulo timing) to the in-process run's.
func TestCLIIsolate(t *testing.T) {
	t.Setenv("PSAN_WORKER_BIN", buildWorker(t))
	codeIso, outIso, errIso := cli(t, "-isolate", "-mode", "mc", "-workers", "4", "../../testdata/figure2.pm")
	if codeIso != exitViolations {
		t.Fatalf("isolated exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", codeIso, exitViolations, outIso, errIso)
	}
	code, out, _ := cli(t, "-mode", "mc", "-workers", "1", "../../testdata/figure2.pm")
	if code != exitViolations {
		t.Fatalf("in-process exit = %d, want %d", code, exitViolations)
	}
	if got, want := normalize(outIso), normalize(out); got != want {
		t.Errorf("isolated output differs from in-process:\n--- isolated ---\n%s\n--- in-process ---\n%s", got, want)
	}
}

// TestCLIIsolateDegraded: an unspawnable worker binary degrades the
// campaign to in-process execution — flagged in the report and in the
// exit code — instead of failing it.
func TestCLIIsolateDegraded(t *testing.T) {
	t.Setenv("PSAN_WORKER_BIN", "/nonexistent/psan-worker")
	code, out, _ := cli(t, "-isolate", "-mode", "mc", "../../testdata/figure2_fixed.pm")
	if code != exitDegraded {
		t.Fatalf("exit = %d, want %d\n%s", code, exitDegraded, out)
	}
	if !strings.Contains(out, "DEGRADED") {
		t.Fatalf("degraded run not flagged:\n%s", out)
	}
	if !strings.Contains(out, "no robustness violations found") {
		t.Fatalf("verdict missing:\n%s", out)
	}
}
