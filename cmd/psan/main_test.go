package main

import (
	"bytes"
	"strings"
	"testing"
)

// cli runs the command with args, returning exit code and both streams.
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCLIFindsFigure2(t *testing.T) {
	code, out, _ := cli(t, "-mode", "mc", "../../testdata/figure2.pm")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (violations found)\n%s", code, out)
	}
	for _, want := range []string{"robustness violation", "missing flush", "fix: insert flush+drain"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICleanProgram(t *testing.T) {
	code, out, _ := cli(t, "-mode", "mc", "../../testdata/figure2_fixed.pm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "no robustness violations found") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCLIFix(t *testing.T) {
	code, out, errOut := cli(t, "-fix", "-mode", "mc", "../../testdata/figure2.pm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "flushopt x;") || !strings.Contains(out, "sfence;") {
		t.Fatalf("repaired program missing flushes:\n%s", out)
	}
	if !strings.Contains(out, "// inserted") {
		t.Fatalf("fix log missing:\n%s", out)
	}
}

func TestCLITrace(t *testing.T) {
	code, out, _ := cli(t, "-trace", "../../testdata/figure2.pm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, want := range []string{"sub-execution e1", "crash C1", "events:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestCLIRandomMode(t *testing.T) {
	code, out, _ := cli(t, "-mode", "random", "-execs", "300", "-seed", "5", "../../testdata/figure7.pm")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "x = 1") {
		t.Fatalf("Figure 7 bug not localized:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if code, _, _ := cli(t); code != 2 {
		t.Fatal("missing file must exit 2")
	}
	if code, _, errOut := cli(t, "nonexistent.pm"); code != 2 || !strings.Contains(errOut, "psan:") {
		t.Fatalf("unreadable file must exit 2: %d %q", code, errOut)
	}
	if code, _, _ := cli(t, "-mode", "bogus", "../../testdata/figure2.pm"); code != 2 {
		t.Fatal("bad mode must exit 2")
	}
}

func TestCLIDump(t *testing.T) {
	code, out, _ := cli(t, "-dump", "-mode", "mc", "../../testdata/sameline.pm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "sameline x y;") {
		t.Fatalf("dump missing structure:\n%s", out)
	}
}
