// Command psan-litmus replays the paper's worked examples (Figures 1,
// 2, 4–8, 11, 12, plus the §1.1 flush-semantics corners) and narrates
// PSan's potential-crash-interval derivations:
//
//	psan-litmus                  # run every scenario
//	psan-litmus fig7             # run one scenario
//	psan-litmus -model strict    # replay under another persistency model
//
// Under a non-weak model (strict) the scripted stale reads are
// unreachable; the expected verdict for every scenario is then
// "robust", and the narration shows which substitutions were made.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/litmus"
	"repro/internal/obs"
	"repro/internal/persist"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psan-litmus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "", "persistency-model backend: "+strings.Join(persist.Names(), ", "))
	window := fs.Int("window", 0, "bounded trace window: retire trace history every N operations (0: unbounded; verdicts are identical either way)")
	metricsOut := fs.String("metrics-out", "", "write a JSON snapshot of the backend op counters to this file")
	metricsAddr := fs.String("metrics-addr", "", "serve the backend op counters over HTTP on this address (/metrics OpenMetrics text, /metrics.json JSON snapshot, /debug/vars expvar)")
	progress := fs.Duration("progress", 0, "print live progress to stderr at this interval (0: off)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: psan-litmus [-model name] [figure]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *window < 0 {
		fmt.Fprintf(stderr, "psan-litmus: -window must be >= 0\n")
		return 2
	}
	cfg := persist.Config{Name: *model, Window: *window}
	if _, err := persist.New(cfg); err != nil {
		fmt.Fprintf(stderr, "psan-litmus: %v\n", err)
		return 2
	}
	if *metricsOut != "" || *metricsAddr != "" || *progress > 0 {
		// The scenarios build worlds from cfg, so the backend's per-model
		// counters land in this registry.
		cfg.Obs = &obs.Observer{Metrics: obs.NewRegistry()}
	}
	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(*metricsAddr, cfg.Obs.Metrics)
		if err != nil {
			fmt.Fprintf(stderr, "psan-litmus: -metrics-addr: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "psan-litmus: metrics at http://%s/metrics (also /metrics.json, /debug/vars)\n", srv.Addr)
	}
	if *progress > 0 {
		stopProgress := obs.StartProgress(obs.ProgressConfig{
			Out: stderr, Registry: cfg.Obs.Metrics, Interval: *progress,
		})
		defer stopProgress()
	}
	scenarios := litmus.Scenarios()
	if fs.NArg() > 0 {
		sc := litmus.ByName(fs.Arg(0))
		if sc == nil {
			fmt.Fprintf(stderr, "psan-litmus: unknown figure %q; available:\n", fs.Arg(0))
			for _, s := range scenarios {
				fmt.Fprintf(stderr, "  %-18s %s\n", s.Name, s.Title)
			}
			return 2
		}
		scenarios = []litmus.Scenario{*sc}
	}
	bad := false
	for _, sc := range scenarios {
		fmt.Fprintf(stdout, "=== %s: %s ===\n", sc.Name, sc.Title)
		vs := sc.RunModel(stdout, cfg)
		want := sc.Expect(cfg)
		verdict := "robust"
		if len(vs) > 0 {
			verdict = fmt.Sprintf("NOT robust (%d violation(s))", len(vs))
		}
		fmt.Fprintf(stdout, "verdict: %s (expected: violation=%v)\n\n", verdict, want)
		if (len(vs) > 0) != want {
			bad = true
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(stderr, "psan-litmus: %v\n", err)
			return 2
		}
		err = cfg.Obs.Metrics.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "psan-litmus: -metrics-out: %v\n", err)
			return 2
		}
	}
	if bad {
		return 1
	}
	return 0
}
