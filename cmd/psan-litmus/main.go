// Command psan-litmus replays the paper's worked examples (Figures 1,
// 2, 4–8, 11, 12, plus the §1.1 flush-semantics corners) and narrates
// PSan's potential-crash-interval derivations:
//
//	psan-litmus            # run every scenario
//	psan-litmus fig7       # run one scenario
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/litmus"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	scenarios := litmus.Scenarios()
	if len(args) > 0 {
		sc := litmus.ByName(args[0])
		if sc == nil {
			fmt.Fprintf(stderr, "psan-litmus: unknown figure %q; available:\n", args[0])
			for _, s := range scenarios {
				fmt.Fprintf(stderr, "  %-18s %s\n", s.Name, s.Title)
			}
			return 2
		}
		scenarios = []litmus.Scenario{*sc}
	}
	bad := false
	for _, sc := range scenarios {
		fmt.Fprintf(stdout, "=== %s: %s ===\n", sc.Name, sc.Title)
		vs := sc.Run(stdout)
		verdict := "robust"
		if len(vs) > 0 {
			verdict = fmt.Sprintf("NOT robust (%d violation(s))", len(vs))
		}
		fmt.Fprintf(stdout, "verdict: %s (expected: violation=%v)\n\n", verdict, sc.WantViolation)
		if (len(vs) > 0) != sc.WantViolation {
			bad = true
		}
	}
	if bad {
		return 1
	}
	return 0
}
