package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllScenariosPass(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	for _, want := range []string{"fig2", "fig7", "fig8", "rmw-drain", "verdict: NOT robust", "verdict: robust"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestSingleScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"fig4"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "[2, 4)") {
		t.Fatalf("fig4 narration missing interval:\n%s", out.String())
	}
}

func TestUnknownScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"fig99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "available:") {
		t.Fatalf("stderr missing scenario list:\n%s", errOut.String())
	}
}
