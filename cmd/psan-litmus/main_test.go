package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllScenariosPass(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	for _, want := range []string{"fig2", "fig7", "fig8", "rmw-drain", "verdict: NOT robust", "verdict: robust"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestSingleScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"fig4"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "[2, 4)") {
		t.Fatalf("fig4 narration missing interval:\n%s", out.String())
	}
}

func TestUnknownScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"fig99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "available:") {
		t.Fatalf("stderr missing scenario list:\n%s", errOut.String())
	}
}

func TestModelFlag(t *testing.T) {
	// strict: every scenario becomes robust; the run must still exit 0
	// because the expected verdict adapts with the model.
	var out, errOut bytes.Buffer
	if code := run([]string{"-model", "strict"}, &out, &errOut); code != 0 {
		t.Fatalf("strict exit = %d\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "NOT robust") {
		t.Fatalf("strict run reported a violation:\n%s", out.String())
	}
	// ptsosyn: identical expectations to the default px86 run.
	var out2, errOut2 bytes.Buffer
	if code := run([]string{"-model", "ptsosyn"}, &out2, &errOut2); code != 0 {
		t.Fatalf("ptsosyn exit = %d\n%s", code, out2.String())
	}
	if !strings.Contains(out2.String(), "NOT robust") {
		t.Fatalf("ptsosyn run found no violations:\n%s", out2.String())
	}
	var out3, errOut3 bytes.Buffer
	if code := run([]string{"-model", "nope"}, &out3, &errOut3); code != 2 {
		t.Fatalf("unknown model must exit 2")
	}
	if !strings.Contains(errOut3.String(), "px86") {
		t.Fatalf("error does not list backends:\n%s", errOut3.String())
	}
}
