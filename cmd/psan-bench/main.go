// Command psan-bench regenerates the paper's evaluation tables on the
// benchmark ports:
//
//	psan-bench -table 1          # tool comparison (live litmus demo)
//	psan-bench -table 2          # robustness violations per benchmark
//	psan-bench -table 3          # PSan vs Jaaru overhead + discovery
//	psan-bench -table compare    # §6.4 comparison vs baselines
//	psan-bench -table diff       # cross-model differential checks
//	psan-bench -table all        # everything
//	psan-bench -violations CCEH  # detailed report with fixes
//	psan-bench -model ptsosyn -table 2   # tables under another backend
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/persist"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psan-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to regenerate: 1, 2, 3, compare, diff, or all")
	model := fs.String("model", "", "persistency-model backend for tables 2/3/compare/violations: "+strings.Join(persist.Names(), ", "))
	execs := fs.Int("execs", 0, "override executions per benchmark (0: per-port default)")
	seed := fs.Int64("seed", 1, "exploration seed")
	workers := fs.Int("workers", 0, "parallel exploration workers (0: all CPUs, 1: serial); results are identical for any count")
	violations := fs.String("violations", "", "print the detailed violation report for one benchmark")
	deadline := fs.Duration("deadline", 0, "wall-clock budget per benchmark run (0: none); expired runs report partial coverage")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "psan-bench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "psan-bench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "psan-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface only live allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "psan-bench: %v\n", err)
			}
		}()
	}

	if _, err := persist.New(persist.Config{Name: *model}); err != nil {
		fmt.Fprintf(stderr, "psan-bench: %v\n", err)
		return 2
	}
	opt := report.Options{Executions: *execs, Seed: *seed, Workers: *workers, Deadline: *deadline, Model: *model}
	if *violations != "" {
		out, err := report.Violations(*violations, opt)
		if err != nil {
			fmt.Fprintf(stderr, "psan-bench: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, out)
		return 0
	}
	switch *table {
	case "1":
		_, text := report.Table1()
		fmt.Fprintln(stdout, text)
	case "2":
		fmt.Fprintln(stdout, report.Table2(opt).Render())
	case "3":
		fmt.Fprintln(stdout, report.RenderTable3(report.Table3(opt)))
	case "compare":
		fmt.Fprintln(stdout, report.RenderComparison(report.Comparison(opt)))
	case "diff":
		fmt.Fprintln(stdout, report.RenderDifferential(report.Differential(opt)))
	case "all":
		_, text := report.Table1()
		fmt.Fprintln(stdout, text)
		fmt.Fprintln(stdout, report.Table2(opt).Render())
		fmt.Fprintln(stdout, report.RenderTable3(report.Table3(opt)))
		fmt.Fprintln(stdout, report.RenderComparison(report.Comparison(opt)))
		fmt.Fprintln(stdout, report.RenderDifferential(report.Differential(opt)))
	default:
		fmt.Fprintf(stderr, "psan-bench: unknown table %q\n", *table)
		return 2
	}
	return 0
}
