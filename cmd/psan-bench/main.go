// Command psan-bench regenerates the paper's evaluation tables on the
// benchmark ports:
//
//	psan-bench -table 1          # tool comparison (live litmus demo)
//	psan-bench -table 2          # robustness violations per benchmark
//	psan-bench -table 3          # PSan vs Jaaru overhead + discovery
//	psan-bench -table compare    # §6.4 comparison vs baselines
//	psan-bench -table diff       # cross-model differential checks
//	psan-bench -table all        # everything
//	psan-bench -violations CCEH  # detailed report with fixes
//	psan-bench -model ptsosyn -table 2   # tables under another backend
//	psan-bench -workload redis -ops 200000 -window 64   # stream a
//	                             # server-class workload through one
//	                             # execution with a bounded trace window,
//	                             # reporting throughput and peak heap
//
// An interrupt (^C) or an expired -deadline degrades gracefully: the
// in-flight exploration drains, partial tables are rendered, and the
// -cpuprofile/-memprofile files are flushed through the same exit path
// a completed run takes — a profile of an aborted campaign is still a
// valid profile.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/benchmarks/redislog"
	"repro/internal/benchmarks/slabcache"
	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	return runCtx(context.Background(), args, stdout, stderr)
}

// profiler owns the -cpuprofile/-memprofile lifecycle. Every return
// path out of runCtx flushes through its single deferred stop() — an
// early deadline abort or interrupt produces the same complete profile
// files a full run does.
type profiler struct {
	cpuFile *os.File
	memPath string
	stderr  io.Writer
}

func (p *profiler) start(cpuPath, memPath string) error {
	p.memPath = memPath
	if cpuPath == "" {
		return nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// stop flushes both profiles; it is the one exit path for profile data.
func (p *profiler) stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintf(p.stderr, "psan-bench: %v\n", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			fmt.Fprintf(p.stderr, "psan-bench: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // surface only live allocations
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(p.stderr, "psan-bench: %v\n", err)
		}
	}
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psan-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to regenerate: 1, 2, 3, compare, diff, or all")
	model := fs.String("model", "", "persistency-model backend for tables 2/3/compare/violations: "+strings.Join(persist.Names(), ", "))
	execs := fs.Int("execs", 0, "override executions per benchmark (0: per-port default)")
	seed := fs.Int64("seed", 1, "exploration seed")
	workers := fs.String("workers", "0", "parallel exploration workers (0: all CPUs, 1: serial); results are identical for any count. A comma-separated list (e.g. 1,2,4,8) makes -json sweep the parallel benchmark over each count; tables use the first entry")
	steal := fs.Bool("steal", true, "work stealing between mc-mode workers (timing A/B; results are identical either way)")
	violations := fs.String("violations", "", "print the detailed violation report for one benchmark")
	deadline := fs.Duration("deadline", 0, "wall-clock budget per benchmark run (0: none); expired runs report partial coverage")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file; flushed even when a deadline or ^C aborts the run")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit; flushed even when a deadline or ^C aborts the run")
	metricsAddr := fs.String("metrics-addr", "", "serve campaign metrics over HTTP on this address (/metrics OpenMetrics text, /metrics.json JSON snapshot, /debug/vars expvar)")
	progress := fs.Duration("progress", 0, "print live campaign progress to stderr at this interval (0: off)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event timeline to this file (plus <file>.jsonl) on exit")
	reduction := fs.String("reduction", "all", "model-check reductions: all, snapshots, dpor, or none (A/B timing; tables are identical either way)")
	window := fs.Int("window", 0, "bounded trace window for -workload runs: retire trace history every N operations, keeping memory flat (0: unbounded; verdicts are identical either way)")
	workloadName := fs.String("workload", "", "stream a server-class workload instead of tables: redis (append-log+dict) or slab (slab cache)")
	wlVariant := fs.String("variant", "fixed", "workload variant: fixed or buggy")
	wlOps := fs.Int("ops", 200_000, "workload requests per execution")
	wlKeys := fs.Int("keys", 4096, "workload keyspace size")
	wlZipf := fs.Float64("zipf", 1.2, "workload Zipfian key skew (<= 1: uniform keyspace)")
	wlReadPct := fs.Int("read-pct", 50, "workload GET percentage, 0-100")
	wlThreads := fs.Int("threads", 2, "workload client threads per wave")
	wlChurn := fs.Int("churn", 0, "workload thread churn: retire each client thread after N requests and spawn a fresh wave (0: off)")
	jsonOut := fs.String("json", "", "run the serial model-check benchmark suite instead of tables and write min-of-N results to this file (BENCH_*.json format); with -workload, write that run's row instead")
	benchCount := fs.Int("bench-count", 3, "repetitions per benchmark for -json; the minimum is reported")
	benchDesc := fs.String("bench-desc", "", "description string embedded in the -json output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	disableSnaps, disableDPOR, err := explore.ParseReduction(*reduction)
	if err != nil {
		fmt.Fprintf(stderr, "psan-bench: -reduction: %v\n", err)
		return 2
	}
	workerList, err := parseWorkerList(*workers)
	if err != nil {
		fmt.Fprintf(stderr, "psan-bench: -workers: %v\n", err)
		return 2
	}

	prof := &profiler{stderr: stderr}
	if err := prof.start(*cpuprofile, *memprofile); err != nil {
		fmt.Fprintf(stderr, "psan-bench: %v\n", err)
		return 2
	}
	defer prof.stop()

	if _, err := persist.New(persist.Config{Name: *model}); err != nil {
		fmt.Fprintf(stderr, "psan-bench: %v\n", err)
		return 2
	}
	var observer *obs.Observer
	var tracer *obs.Tracer
	if *metricsAddr != "" || *progress > 0 || *traceOut != "" {
		observer = &obs.Observer{}
		if *metricsAddr != "" || *progress > 0 {
			observer.Metrics = obs.NewRegistry()
		}
		if *traceOut != "" {
			tracer = obs.NewTracer()
			tracer.NameThread(0, "bench")
			observer.Tracer = tracer
			defer func() {
				if err := tracer.WriteFiles(*traceOut); err != nil {
					fmt.Fprintf(stderr, "psan-bench: -trace-out: %v\n", err)
				}
			}()
		}
	}
	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(*metricsAddr, observer.Metrics)
		if err != nil {
			fmt.Fprintf(stderr, "psan-bench: -metrics-addr: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "psan-bench: metrics at http://%s/metrics (also /metrics.json, /debug/vars)\n", srv.Addr)
	}
	if *progress > 0 {
		stopProgress := obs.StartProgress(obs.ProgressConfig{
			Out: stderr, Registry: observer.Metrics, Interval: *progress,
		})
		defer stopProgress()
	}
	if *workloadName != "" {
		if *window < 0 {
			fmt.Fprintf(stderr, "psan-bench: -window must be >= 0\n")
			return 2
		}
		wcfg := workload.Config{
			Seed: *seed, Ops: *wlOps, Keys: *wlKeys, ZipfS: *wlZipf,
			ReadPct: *wlReadPct, Threads: *wlThreads, Churn: *wlChurn,
		}
		return runWorkloadCmd(ctx, *workloadName, *wlVariant, wcfg, workloadRunOpts{
			model: *model, window: *window, execs: *execs, seed: *seed,
			jsonPath: *jsonOut, desc: *benchDesc, obs: observer,
		}, stdout, stderr)
	}
	if *jsonOut != "" {
		if err := runBenchJSON(*jsonOut, *benchDesc, *reduction, *benchCount, workerList, disableSnaps, disableDPOR, !*steal, stdout); err != nil {
			fmt.Fprintf(stderr, "psan-bench: -json: %v\n", err)
			return 2
		}
		return 0
	}
	opt := report.Options{
		Executions: *execs, Seed: *seed, Workers: workerList[0], Deadline: *deadline, Model: *model,
		Obs: observer, Context: ctx,
		DisableSnapshots: disableSnaps, DisableDPOR: disableDPOR,
		DisableStealing: !*steal,
	}
	if *violations != "" {
		out, err := report.Violations(*violations, opt)
		if err != nil {
			fmt.Fprintf(stderr, "psan-bench: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, out)
		return 0
	}
	switch *table {
	case "1":
		_, text := report.Table1()
		fmt.Fprintln(stdout, text)
	case "2":
		fmt.Fprintln(stdout, report.Table2(opt).Render())
	case "3":
		fmt.Fprintln(stdout, report.RenderTable3(report.Table3(opt)))
	case "compare":
		fmt.Fprintln(stdout, report.RenderComparison(report.Comparison(opt)))
	case "diff":
		fmt.Fprintln(stdout, report.RenderDifferential(report.Differential(opt)))
	case "all":
		_, text := report.Table1()
		fmt.Fprintln(stdout, text)
		fmt.Fprintln(stdout, report.Table2(opt).Render())
		fmt.Fprintln(stdout, report.RenderTable3(report.Table3(opt)))
		fmt.Fprintln(stdout, report.RenderComparison(report.Comparison(opt)))
		fmt.Fprintln(stdout, report.RenderDifferential(report.Differential(opt)))
	default:
		fmt.Fprintf(stderr, "psan-bench: unknown table %q\n", *table)
		return 2
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintln(stderr, "psan-bench: interrupted; tables above reflect partial coverage")
		return 3
	}
	return 0
}

// benchRow is one entry of the emitted BENCH_*.json file.
type benchRow struct {
	Name     string `json:"name"`
	NsOp     int64  `json:"ns_op"`
	BOp      int64  `json:"B_op"`
	AllocsOp int64  `json:"allocs_op"`
	// PeakHeapBytes is the HeapInuse high-water mark sampled while the
	// row's workload ran — the number the bounded-window pipeline exists
	// to keep flat on long traces.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
}

// heapWatcher samples runtime.MemStats.HeapInuse on a short ticker and
// keeps the high-water mark. One watcher brackets one measured run; the
// 10ms cadence is coarse enough that ReadMemStats' stop-the-world cost
// stays invisible next to the workloads it brackets.
type heapWatcher struct {
	quit chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapWatcher() *heapWatcher {
	hw := &heapWatcher{quit: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hw.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > hw.peak {
				hw.peak = ms.HeapInuse
			}
			select {
			case <-hw.quit:
				return
			case <-tick.C:
			}
		}
	}()
	return hw
}

// stop halts the sampler and returns the high-water mark, folding in
// one final sample so short runs are never measured as zero.
func (hw *heapWatcher) stop() uint64 {
	close(hw.quit)
	<-hw.done
	return hw.peak
}

// workloadRunOpts carries the non-workload knobs of a -workload run.
type workloadRunOpts struct {
	model    string
	window   int
	execs    int
	seed     int64
	jsonPath string
	desc     string
	obs      *obs.Observer
}

// runWorkloadCmd streams one server-class workload through the
// exploration pipeline: a random-mode campaign (default one execution)
// whose every execution issues wcfg.Ops requests, with the HeapInuse
// high-water sampled across the run. The "peak heap:" line is the
// machine-readable contract the CI long-trace job greps.
func runWorkloadCmd(ctx context.Context, name, variant string, wcfg workload.Config, ro workloadRunOpts, stdout, stderr io.Writer) int {
	v := bench.Fixed
	switch variant {
	case "fixed":
	case "buggy":
		v = bench.Buggy
	default:
		fmt.Fprintf(stderr, "psan-bench: unknown -variant %q (want fixed or buggy)\n", variant)
		return 2
	}
	var prog explore.Program
	switch name {
	case "redis":
		prog = redislog.BuildWorkload(v, wcfg)
	case "slab":
		prog = slabcache.BuildWorkload(v, wcfg)
	default:
		fmt.Fprintf(stderr, "psan-bench: unknown -workload %q (want redis or slab)\n", name)
		return 2
	}
	execs := ro.execs
	if execs <= 0 {
		execs = 1
	}
	opts := explore.Options{
		Mode:       explore.Random,
		Executions: execs,
		Seed:       ro.seed,
		Context:    ctx,
		Model:      persist.Config{Name: ro.model, Window: ro.window},
		Obs:        ro.obs,
		// Each request is a bounded burst of pmem operations (stores,
		// per-line flushes, fences, the CAS publish); 64 per request
		// overestimates the deepest slab class with headroom.
		OpLimit: wcfg.Ops*64 + 4096,
	}
	hw := startHeapWatcher()
	res := explore.Run(prog, opts)
	peak := hw.stop()
	fmt.Fprint(stdout, report.RunSummary(res))
	fmt.Fprintf(stdout, "peak heap: %d bytes\n", peak)
	if ro.jsonPath != "" {
		out := benchFile{Description: ro.desc}
		// Append to an existing harness-generated file, so one
		// BENCH_*.json can carry the model-check suite rows plus several
		// workload rows without hand-merging.
		if data, err := os.ReadFile(ro.jsonPath); err == nil {
			var prev benchFile
			if json.Unmarshal(data, &prev) == nil {
				out.Benchmarks = prev.Benchmarks
				if out.Description == "" {
					out.Description = prev.Description
				}
			}
		}
		if out.Description == "" {
			out.Description = fmt.Sprintf(
				"psan-bench -workload %s (%s): ops=%d keys=%d zipf=%g read-pct=%d threads=%d churn=%d window=%d execs=%d; generated on %s/%s (GOMAXPROCS=%d)",
				name, variant, wcfg.Ops, wcfg.Keys, wcfg.ZipfS, wcfg.ReadPct, wcfg.Threads, wcfg.Churn, ro.window, execs,
				runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0))
		}
		out.Benchmarks = append(out.Benchmarks, benchRow{
			Name:          fmt.Sprintf("Workload/%s/ops=%d/window=%d", name, wcfg.Ops, ro.window),
			NsOp:          res.Elapsed.Nanoseconds(),
			PeakHeapBytes: peak,
		})
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "psan-bench: -json: %v\n", err)
			return 2
		}
		if err := os.WriteFile(ro.jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "psan-bench: -json: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", ro.jsonPath)
	}
	if v == bench.Fixed && len(res.Violations) > 0 {
		fmt.Fprintf(stderr, "psan-bench: fixed workload reported %d violation(s)\n", len(res.Violations))
		return 1
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintln(stderr, "psan-bench: interrupted; results above reflect partial coverage")
		return 3
	}
	return 0
}

// benchFile matches the BENCH_pr*.json layout the repo tracks.
type benchFile struct {
	Description string     `json:"description"`
	Benchmarks  []benchRow `json:"benchmarks"`
}

// parseWorkerList parses the -workers flag: a single count or a
// comma-separated sweep list. Every entry must be >= 0 (0 meaning all
// CPUs, as in explore.Options.Workers).
func parseWorkerList(s string) ([]int, error) {
	if s == "" {
		return []int{0}, nil
	}
	parts := strings.Split(s, ",")
	list := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q", p)
		}
		if n < 0 {
			return nil, fmt.Errorf("worker count %d is negative", n)
		}
		list = append(list, n)
	}
	return list, nil
}

// runBenchJSON reruns the workloads of BenchmarkExploreModelCheckSerial
// and BenchmarkExploreModelCheckParallel (capped model-check DFS on the
// CCEH and FAST_FAIR ports) count times per configuration through
// testing.Benchmark and writes the per-configuration minimum to path,
// so the tracked BENCH_*.json files are generated by the harness
// instead of transcribed by hand. The -reduction and -steal flags
// apply, and the parallel rows sweep every -workers entry — the
// one-command scaling A/B behind EXPERIMENTS.md.
func runBenchJSON(path, desc, reduction string, count int, workerList []int, disableSnaps, disableDPOR, disableSteal bool, stdout io.Writer) error {
	if count < 1 {
		count = 1
	}
	out := benchFile{Description: desc}
	if out.Description == "" {
		out.Description = fmt.Sprintf(
			"psan-bench -json: model-check exploration (Executions:200) on the CCEH and FAST_FAIR ports, reduction=%s, steal=%v, workers=%v, min of %d; generated on %s/%s (GOMAXPROCS=%d)",
			reduction, !disableSteal, workerList, count, runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0))
	}
	measure := func(name string, workers int) benchRow {
		bm := benchmarks.ByName(name)
		var best benchRow
		for rep := 0; rep < count; rep++ {
			hw := startHeapWatcher()
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := explore.Run(bm.Build(bench.Buggy), explore.Options{
						Mode:             explore.ModelCheck,
						Executions:       200,
						Workers:          workers,
						DisableSnapshots: disableSnaps,
						DisableDPOR:      disableDPOR,
						DisableStealing:  disableSteal,
					})
					if res.Executions == 0 {
						b.Fatal("no executions ran")
					}
				}
			})
			row := benchRow{
				Name:          "BenchmarkExploreModelCheckSerial/" + name,
				NsOp:          r.NsPerOp(),
				BOp:           r.AllocedBytesPerOp(),
				AllocsOp:      r.AllocsPerOp(),
				PeakHeapBytes: hw.stop(),
			}
			if workers != 1 {
				shown := workers
				if shown == 0 {
					shown = runtime.NumCPU()
				}
				row.Name = fmt.Sprintf("BenchmarkExploreModelCheckParallel/%s/workers=%d", name, shown)
			}
			if rep == 0 || row.NsOp < best.NsOp {
				best = row
			}
			fmt.Fprintf(stdout, "%s rep %d/%d: %d ns/op  %d B/op  %d allocs/op\n",
				row.Name, rep+1, count, row.NsOp, row.BOp, row.AllocsOp)
		}
		return best
	}
	for _, name := range []string{"CCEH", "FAST_FAIR"} {
		if benchmarks.ByName(name) == nil {
			return fmt.Errorf("benchmark %q not registered", name)
		}
		// The serial row keeps its historical name so BENCH_*.json files
		// stay comparable across PRs; the sweep adds one parallel row per
		// requested worker count.
		out.Benchmarks = append(out.Benchmarks, measure(name, 1))
		for _, w := range workerList {
			if w == 1 {
				continue // already measured as the serial row
			}
			out.Benchmarks = append(out.Benchmarks, measure(name, w))
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}
