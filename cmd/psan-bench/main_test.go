package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1CLI(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-table", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\n%s", code, errOut.String())
	}
	for _, want := range []string{"PSan", "Robustness", "Witcher", "Pmemcheck"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table 1 missing %q:\n%s", want, out.String())
		}
	}
}

func TestViolationsCLI(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-violations", "P-CLHT", "-execs", "150"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "clht_t::table") {
		t.Fatalf("violations report missing row #31:\n%s", out.String())
	}
}

func TestBadArgsCLI(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-table", "9"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := run([]string{"-violations", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestModelFlagCLI(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-violations", "P-CLHT", "-execs", "150", "-model", "ptsosyn"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "clht_t::table") {
		t.Fatalf("ptsosyn violations report missing row #31:\n%s", out.String())
	}
	var out2, errOut2 bytes.Buffer
	if code := run([]string{"-model", "bogus", "-table", "2"}, &out2, &errOut2); code != 2 {
		t.Fatalf("unknown model must exit 2")
	}
	if !strings.Contains(errOut2.String(), "px86") {
		t.Fatalf("error does not list backends:\n%s", errOut2.String())
	}
}

func TestDiffTableCLI(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-table", "diff", "-execs", "120"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\n%s", code, errOut.String())
	}
	for _, want := range []string{"px86 vs ptsosyn", "strict verdict", "all models agree"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("diff table missing %q:\n%s", want, out.String())
		}
	}
}
