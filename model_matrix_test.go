package repro

// Model-matrix tier: CI runs the quick test suite once per registered
// backend with PSAN_TEST_MODEL naming the model under test. Locally the
// matrix defaults to the px86 backend, so `go test` always covers the
// default path; set PSAN_TEST_MODEL=strict or =ptsosyn to re-run the
// tier under another backend.

import (
	"os"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/persist"
)

// modelUnderTest resolves the PSAN_TEST_MODEL environment variable to a
// backend config, defaulting to the registry default.
func modelUnderTest(t *testing.T) persist.Config {
	t.Helper()
	cfg := persist.Config{Name: os.Getenv("PSAN_TEST_MODEL")}
	if _, err := persist.New(cfg); err != nil {
		t.Fatalf("PSAN_TEST_MODEL: %v", err)
	}
	return cfg
}

// TestModelMatrixBenchmarks runs every benchmark's buggy and fixed
// variants under the selected backend. Weak models must keep the fixed
// variants clean; the strict model must keep everything clean.
func TestModelMatrixBenchmarks(t *testing.T) {
	cfg := modelUnderTest(t)
	weak := persist.IsWeak(cfg.Name)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			buggy := explore.Run(b.Build(bench.Buggy), explore.Options{
				Mode: b.PreferredMode, Executions: scaled(b.Executions), Seed: 11,
				Model: cfg,
			})
			if buggy.Executions == 0 {
				t.Fatal("no executions ran")
			}
			if !weak && len(buggy.Violations) != 0 {
				t.Fatalf("non-weak model %q reported violations: %v",
					cfg.Name, buggy.ViolationKeys())
			}
			fixed := explore.Run(b.Build(bench.Fixed), explore.Options{
				Mode: b.PreferredMode, Executions: scaled(b.Executions), Seed: 11,
				Model: cfg,
			})
			if len(fixed.Violations) != 0 {
				t.Fatalf("fixed variant not clean under %q: %v",
					cfg.Name, fixed.ViolationKeys())
			}
		})
	}
}

// TestModelMatrixParallelDeterminism: the parallel-equals-serial
// guarantee is model-independent — an 8-worker run reproduces the
// serial run under every backend, not just the default.
func TestModelMatrixParallelDeterminism(t *testing.T) {
	cfg := modelUnderTest(t)
	execs := scaled(200)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opt := explore.Options{
				Mode: explore.Random, Executions: execs, Seed: 11, Model: cfg,
			}
			opt.Workers = 1
			serial := explore.Run(b.Build(bench.Buggy), opt)
			opt.Workers = 8
			parallel := explore.Run(b.Build(bench.Buggy), opt)
			assertSameOutcome(t, b.Name, serial, parallel)
		})
	}
}

// TestModelMatrixTestdata runs the .pm verdict manifest under the
// selected backend. Under a weak model the manifest's verdicts hold
// as written; under strict everything is robust.
func TestModelMatrixTestdata(t *testing.T) {
	cfg := modelUnderTest(t)
	weak := persist.IsWeak(cfg.Name)
	for _, tc := range testdataPrograms {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			prog := loadProgram(t, tc.file)
			res := explore.Run(interp.New(tc.file, prog), explore.Options{
				Mode: tc.mode, Executions: scaled(tc.executions), Seed: 1,
				Model: cfg,
			})
			want := tc.robust || !weak
			if got := len(res.Violations) == 0; got != want {
				t.Fatalf("%s under %q: robust=%v, want %v\nviolations: %v",
					tc.file, cfg.Name, got, want, res.ViolationKeys())
			}
		})
	}
}
